// Package trace covers the paper's provenance story for life functions:
// "knowledge ... garnered possibly from trace data that exposes B's
// owner's computer usage patterns", encapsulated "by some well-behaved
// curve". It provides synthetic owner-session generators with known
// ground truth, product-limit (Kaplan–Meier) survival estimation that
// tolerates right-censored observations, knot-thinned smoothing into a
// differentiable empirical life function, and fit-quality metrics.
package trace

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/lifefn"
	"repro/internal/rng"
)

// ErrNoObservations reports an empty trace.
var ErrNoObservations = errors.New("trace: no observations")

// Observation is one recorded owner absence. Censored marks an absence
// still in progress when the trace was collected: its true duration is
// known only to exceed Duration.
type Observation struct {
	Duration float64
	Censored bool
}

// SampleAbsences draws n complete absence observations whose true
// survival function is the life function l, using inverse-transform
// sampling.
func SampleAbsences(l lifefn.Life, n int, src *rng.Source) []Observation {
	obs := make([]Observation, n)
	horizon := l.Horizon()
	bound := 0.0
	if !math.IsInf(horizon, 1) {
		bound = horizon
	}
	for i := range obs {
		obs[i] = Observation{Duration: src.FromSurvival(l.P, bound)}
	}
	return obs
}

// CensorAt right-censors every observation longer than cut: the trace
// collector stopped watching at that point. The returned slice is a
// modified copy.
func CensorAt(obs []Observation, cut float64) []Observation {
	out := make([]Observation, len(obs))
	for i, o := range obs {
		if o.Duration > cut {
			out[i] = Observation{Duration: cut, Censored: true}
		} else {
			out[i] = o
		}
	}
	return out
}

// ProductLimit computes the Kaplan–Meier estimate of the survival
// function from possibly-censored absence observations. It returns
// strictly increasing event times and the estimated survival just after
// each time; the curve starts implicitly at S(0) = 1.
func ProductLimit(obs []Observation) (times, surv []float64, err error) {
	if len(obs) == 0 {
		return nil, nil, ErrNoObservations
	}
	sorted := append([]Observation(nil), obs...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Duration < sorted[j].Duration {
			return true
		}
		if sorted[j].Duration < sorted[i].Duration {
			return false
		}
		// Deaths before censorings at ties (standard convention).
		return !sorted[i].Censored && sorted[j].Censored
	})
	atRisk := len(sorted)
	s := 1.0
	i := 0
	for i < len(sorted) {
		t := sorted[i].Duration
		deaths, censored := 0, 0
		//lint:allow floatcmp tied event times group exactly (Kaplan-Meier convention)
		for i < len(sorted) && sorted[i].Duration == t {
			if sorted[i].Censored {
				censored++
			} else {
				deaths++
			}
			i++
		}
		if deaths > 0 {
			s *= 1 - float64(deaths)/float64(atRisk)
			times = append(times, t)
			surv = append(surv, s)
		}
		atRisk -= deaths + censored
	}
	if len(times) == 0 {
		return nil, nil, fmt.Errorf("trace: all %d observations censored", len(obs))
	}
	return times, surv, nil
}

// FitOptions tunes FitLife.
type FitOptions struct {
	// Knots is the number of interpolation knots the step estimate is
	// thinned to (the "well-behaved curve" encapsulation). If zero, 32.
	Knots int
}

// FitLife estimates a differentiable life function from a trace:
// product-limit survival estimate, thinned to quantile-spaced knots,
// interpolated monotonically (PCHIP) by lifefn.NewEmpirical. The result
// satisfies the paper's model assumptions by construction and can be
// handed directly to the planners.
func FitLife(obs []Observation, opt FitOptions) (*lifefn.Empirical, error) {
	knots := opt.Knots
	if knots <= 0 {
		knots = 32
	}
	times, surv, err := ProductLimit(obs)
	if err != nil {
		return nil, err
	}
	ts := []float64{0}
	ps := []float64{1}
	if len(times) <= knots {
		ts = append(ts, times...)
		ps = append(ps, surv...)
	} else {
		// Thin to about `knots` quantile-spaced event indices, always
		// keeping the final event.
		step := float64(len(times)-1) / float64(knots-1)
		prevIdx := -1
		for k := 0; k < knots; k++ {
			idx := int(math.Round(float64(k) * step))
			if idx <= prevIdx {
				continue
			}
			prevIdx = idx
			ts = append(ts, times[idx])
			ps = append(ps, surv[idx])
		}
	}
	// If the longest observation was censored, survival never reached
	// zero: leave the curve positive (NewEmpirical extends it with an
	// exponential tail). Otherwise survival hits zero at the largest
	// death, giving a bounded horizon.
	return lifefn.NewEmpirical(ts, ps)
}

// KSDistance returns the Kolmogorov–Smirnov-style distance
// max_t |a.P(t) - b.P(t)| over n+1 samples of [0, span].
func KSDistance(a, b lifefn.Life, span float64, n int) float64 {
	if n < 1 {
		n = 1
	}
	worst := 0.0
	for i := 0; i <= n; i++ {
		t := span * float64(i) / float64(n)
		if d := math.Abs(a.P(t) - b.P(t)); d > worst {
			worst = d
		}
	}
	return worst
}

// EffectiveSpan returns a comparison span for a life function: its
// horizon when bounded, else the time P decays below 1e-3.
func EffectiveSpan(l lifefn.Life) float64 {
	if h := l.Horizon(); !math.IsInf(h, 1) {
		return h
	}
	s := 1.0
	for l.P(s) > 1e-3 && s < 1e12 {
		s *= 2
	}
	return s
}
