package trace

import (
	"math"
	"strings"
	"testing"

	"repro/internal/lifefn"
	"repro/internal/rng"
)

func TestFitGeomDecreasingRecoversRate(t *testing.T) {
	truth, _ := lifefn.NewGeomDecreasing(math.Pow(2, 1.0/32))
	obs := SampleAbsences(truth, 5000, rng.New(21))
	fit, err := FitGeomDecreasing(obs)
	if err != nil {
		t.Fatal(err)
	}
	// Rate λ = ln a: relative error O(1/sqrt(n)) ≈ 1.4%.
	got, want := fit.LnA(), truth.LnA()
	if math.Abs(got-want)/want > 0.05 {
		t.Errorf("rate = %g, want %g", got, want)
	}
}

func TestFitGeomDecreasingCensoredUnbiased(t *testing.T) {
	// Censoring must not bias the exponential MLE (its key property vs
	// naive mean-of-durations).
	truth, _ := lifefn.NewGeomDecreasing(math.Pow(2, 1.0/16))
	obs := CensorAt(SampleAbsences(truth, 8000, rng.New(23)), 10) // heavy censoring
	fit, err := FitGeomDecreasing(obs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.LnA()-truth.LnA())/truth.LnA() > 0.06 {
		t.Errorf("censored rate = %g, want %g", fit.LnA(), truth.LnA())
	}
	// Contrast: a naive fit that ignores censoring (treating censored
	// durations as deaths) overestimates the rate.
	naiveDeaths := len(obs)
	exposure := 0.0
	for _, o := range obs {
		exposure += o.Duration
	}
	naiveRate := float64(naiveDeaths) / exposure
	if naiveRate <= fit.LnA() {
		t.Error("expected the censoring-ignorant rate to be biased upward")
	}
}

func TestFitUniformRecoversLifespan(t *testing.T) {
	truth, _ := lifefn.NewUniform(200)
	obs := SampleAbsences(truth, 3000, rng.New(29))
	fit, err := FitUniform(obs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.L-200)/200 > 0.02 {
		t.Errorf("L = %g, want 200", fit.L)
	}
}

func TestFitUniformCensored(t *testing.T) {
	truth, _ := lifefn.NewUniform(100)
	obs := CensorAt(SampleAbsences(truth, 4000, rng.New(31)), 80)
	fit, err := FitUniform(obs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.L-100)/100 > 0.08 {
		t.Errorf("censored L = %g, want 100", fit.L)
	}
}

func TestFitWeibullRecoversShape(t *testing.T) {
	truth, _ := lifefn.NewWeibull(0.8, 30)
	obs := SampleAbsences(truth, 6000, rng.New(37))
	fit, err := FitWeibull(obs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.K-0.8)/0.8 > 0.08 {
		t.Errorf("shape = %g, want 0.8", fit.K)
	}
	if math.Abs(fit.Scale-30)/30 > 0.08 {
		t.Errorf("scale = %g, want 30", fit.Scale)
	}
}

func TestFitWeibullExponentialSpecialCase(t *testing.T) {
	// Exponential data must fit with k ≈ 1.
	truth, _ := lifefn.NewGeomDecreasing(math.Pow(2, 1.0/20))
	obs := SampleAbsences(truth, 6000, rng.New(41))
	fit, err := FitWeibull(obs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.K-1) > 0.08 {
		t.Errorf("shape on exponential data = %g, want ~1", fit.K)
	}
}

func TestMLEErrorPaths(t *testing.T) {
	if _, err := FitGeomDecreasing(nil); err == nil {
		t.Error("empty input accepted")
	}
	allCensored := []Observation{{Duration: 5, Censored: true}}
	if _, err := FitGeomDecreasing(allCensored); err == nil {
		t.Error("all-censored accepted by exponential MLE")
	}
	if _, err := FitUniform(allCensored); err == nil {
		t.Error("all-censored accepted by uniform MLE")
	}
	identical := []Observation{{Duration: 3}, {Duration: 3}}
	if _, err := FitWeibull(identical); err == nil {
		t.Error("identical durations accepted by Weibull MLE")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	obs := []Observation{
		{Duration: 1.25},
		{Duration: 7.5, Censored: true},
		{Duration: 0.001},
	}
	var b strings.Builder
	if err := WriteCSV(&b, obs); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(obs) {
		t.Fatalf("round trip length %d", len(back))
	}
	for i := range obs {
		if back[i] != obs[i] {
			t.Errorf("observation %d: %+v != %+v", i, back[i], obs[i])
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"",                                  // no header
		"x,y\n1,false\n",                    // wrong header
		"duration,censored\nabc,false\n",    // bad duration
		"duration,censored\n-1,false\n",     // negative duration
		"duration,censored\n1,maybe\n",      // bad flag
		"duration,censored\n",               // no observations
		"duration,censored\n1,false,true\n", // wrong field count
	}
	for i, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted: %q", i, c)
		}
	}
}
