package trace

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/lifefn"
	"repro/internal/numeric"
)

// This file provides parametric alternatives to the non-parametric
// product-limit fit: maximum-likelihood estimation of the paper's
// standard life-function families from (possibly censored) absence
// observations. The paper imagines encapsulating trace data "by some
// well-behaved curve"; when the family is known, the parametric fit
// needs far fewer sessions for the same schedule regret (experiment
// E10's parametric rows).

// ErrUnfittable reports observations a family cannot explain.
var ErrUnfittable = errors.New("trace: observations unfittable for this family")

// FitGeomDecreasing fits p_a(t) = a^{-t} (exponential absences) by
// maximum likelihood. With deaths d_i and censorings c_j, the MLE of
// the rate λ = ln a is (#deaths) / (Σ all durations); censored
// durations contribute exposure but no event. At least one death is
// required.
func FitGeomDecreasing(obs []Observation) (lifefn.GeomDecreasing, error) {
	if len(obs) == 0 {
		return lifefn.GeomDecreasing{}, ErrNoObservations
	}
	deaths := 0
	exposure := 0.0
	for _, o := range obs {
		if !o.Censored {
			deaths++
		}
		exposure += o.Duration
	}
	if deaths == 0 || exposure <= 0 {
		return lifefn.GeomDecreasing{}, fmt.Errorf("%w: %d deaths over exposure %g", ErrUnfittable, deaths, exposure)
	}
	lambda := float64(deaths) / exposure
	return lifefn.NewGeomDecreasing(math.Exp(lambda))
}

// FitUniform fits p(t) = 1 - t/L by maximum likelihood. The density is
// 1/L on [0, L]; with censoring at levels below the maximum the
// likelihood is Π (1/L) · Π (1 - c_j/L), maximized numerically; with no
// censoring the MLE is simply the sample maximum (which underestimates
// L, so the standard (n+1)/n correction is applied).
func FitUniform(obs []Observation) (lifefn.Uniform, error) {
	if len(obs) == 0 {
		return lifefn.Uniform{}, ErrNoObservations
	}
	maxObs := 0.0
	deaths := 0
	var censored []float64
	for _, o := range obs {
		if o.Duration > maxObs {
			maxObs = o.Duration
		}
		if o.Censored {
			censored = append(censored, o.Duration)
		} else {
			deaths++
		}
	}
	if deaths == 0 || maxObs <= 0 {
		return lifefn.Uniform{}, fmt.Errorf("%w: no uncensored observations", ErrUnfittable)
	}
	if len(censored) == 0 {
		n := float64(deaths)
		return lifefn.NewUniform(maxObs * (n + 1) / n)
	}
	// Negative log-likelihood in L (must be >= maxObs):
	// deaths·ln L - Σ_censored ln(1 - c_j/L).
	nll := func(L float64) float64 {
		v := float64(deaths) * math.Log(L)
		for _, cj := range censored {
			rem := 1 - cj/L
			if rem <= 0 {
				return math.Inf(1)
			}
			v -= math.Log(rem)
		}
		return v
	}
	lo := maxObs * (1 + 1e-9)
	hi := maxObs * 100
	L, _, err := numeric.MaximizeScan(func(l float64) float64 { return -nll(l) }, lo, hi, 256, numeric.MaxOptions{Tol: 1e-9})
	if err != nil {
		return lifefn.Uniform{}, fmt.Errorf("trace: uniform MLE: %w", err)
	}
	return lifefn.NewUniform(L)
}

// FitWeibull fits the survival exp(-(t/scale)^k) by maximum likelihood
// (profile likelihood in the shape k, closed-form scale given k).
// Standard censored-data Weibull MLE; requires at least two uncensored
// observations with distinct durations.
func FitWeibull(obs []Observation) (lifefn.Weibull, error) {
	if len(obs) == 0 {
		return lifefn.Weibull{}, ErrNoObservations
	}
	var deaths []float64
	all := make([]float64, 0, len(obs))
	for _, o := range obs {
		if o.Duration > 0 {
			all = append(all, o.Duration)
			if !o.Censored {
				deaths = append(deaths, o.Duration)
			}
		}
	}
	if len(deaths) < 2 {
		return lifefn.Weibull{}, fmt.Errorf("%w: need >= 2 positive uncensored observations", ErrUnfittable)
	}
	distinct := false
	for _, d := range deaths[1:] {
		//lint:allow floatcmp distinctness guard; any difference at all suffices
		if d != deaths[0] {
			distinct = true
			break
		}
	}
	if !distinct {
		return lifefn.Weibull{}, fmt.Errorf("%w: all uncensored durations identical", ErrUnfittable)
	}
	r := float64(len(deaths))
	// Profile log-likelihood: for fixed k, scale^k = Σ t_i^k / r, and
	// ll(k) = r·ln k - r·ln(Σ t^k / r) + (k-1)·Σ_deaths ln t - r.
	profile := func(k float64) float64 {
		if k <= 0 {
			return math.Inf(-1)
		}
		sumTk := 0.0
		for _, t := range all {
			sumTk += math.Pow(t, k)
		}
		sumLn := 0.0
		for _, t := range deaths {
			sumLn += math.Log(t)
		}
		return r*math.Log(k) - r*math.Log(sumTk/r) + (k-1)*sumLn - r
	}
	k, _, err := numeric.MaximizeScan(profile, 0.05, 20, 256, numeric.MaxOptions{Tol: 1e-9})
	if err != nil {
		return lifefn.Weibull{}, fmt.Errorf("trace: weibull MLE: %w", err)
	}
	sumTk := 0.0
	for _, t := range all {
		sumTk += math.Pow(t, k)
	}
	scale := math.Pow(sumTk/r, 1/k)
	return lifefn.NewWeibull(k, scale)
}
