package trace

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/lifefn"
	"repro/internal/rng"
	"repro/internal/sched"
)

func TestProductLimitBandOrdering(t *testing.T) {
	truth, _ := lifefn.NewUniform(100)
	obs := SampleAbsences(truth, 400, rng.New(3))
	band, err := ProductLimitBand(obs, 1.96)
	if err != nil {
		t.Fatal(err)
	}
	if len(band.Times) == 0 {
		t.Fatal("empty band")
	}
	for i := range band.Times {
		if !(band.Lower[i] <= band.Center[i]+1e-12 && band.Center[i] <= band.Upper[i]+1e-12) {
			t.Fatalf("band ordering violated at %d: %g <= %g <= %g",
				i, band.Lower[i], band.Center[i], band.Upper[i])
		}
		if band.Lower[i] < 0 || band.Upper[i] > 1 {
			t.Fatalf("band outside [0,1] at %d", i)
		}
		if i > 0 {
			if band.Lower[i] > band.Lower[i-1]+1e-12 || band.Upper[i] > band.Upper[i-1]+1e-12 {
				t.Fatalf("band not monotone at %d", i)
			}
		}
	}
}

func TestProductLimitBandCoverage(t *testing.T) {
	// Across resamples, the 95% band should contain the true survival
	// at a test point most of the time (pointwise coverage; loose check).
	truth, _ := lifefn.NewUniform(100)
	covered := 0
	const trials = 60
	for trial := 0; trial < trials; trial++ {
		obs := SampleAbsences(truth, 300, rng.New(1000+uint64(trial)))
		band, err := ProductLimitBand(obs, 1.96)
		if err != nil {
			t.Fatal(err)
		}
		// Test at the median time.
		target := 50.0
		idx := 0
		for i, tt := range band.Times {
			if tt <= target {
				idx = i
			}
		}
		if band.Lower[idx] <= 0.5 && 0.5 <= band.Upper[idx] {
			covered++
		}
	}
	if covered < trials*80/100 {
		t.Errorf("band covered truth in only %d/%d resamples", covered, trials)
	}
}

func TestProductLimitBandZeroZ(t *testing.T) {
	truth, _ := lifefn.NewUniform(50)
	obs := SampleAbsences(truth, 100, rng.New(5))
	band, err := ProductLimitBand(obs, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range band.Times {
		//lint:allow floatcmp z=0 collapses the band exactly
		if band.Lower[i] != band.Center[i] || band.Upper[i] != band.Center[i] {
			t.Fatal("z=0 band should collapse to the point estimate")
		}
	}
}

func TestProductLimitBandErrors(t *testing.T) {
	if _, err := ProductLimitBand(nil, 1.96); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := ProductLimitBand([]Observation{{Duration: 1}}, -1); err == nil {
		t.Error("negative z accepted")
	}
	if _, err := ProductLimitBand([]Observation{{Duration: 1, Censored: true}}, 1); err == nil {
		t.Error("all-censored accepted")
	}
}

func TestFitLifeBandPessimisticPlanningIsSafe(t *testing.T) {
	// The pessimistic curve lies below the center curve, so its plan
	// risks shorter periods; under the TRUE risk it must still achieve
	// most of the informed plan's expected work.
	truth, _ := lifefn.NewGeomDecreasing(math.Pow(2, 1.0/32))
	obs := SampleAbsences(truth, 800, rng.New(77))
	center, pessimistic, optimistic, err := FitLifeBand(obs, 1.96, FitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Band ordering transfers to the smoothed curves on the observed
	// range (up to smoothing slack).
	for _, x := range []float64{5, 15, 30, 60} {
		if pessimistic.P(x) > center.P(x)+0.05 || center.P(x) > optimistic.P(x)+0.05 {
			t.Errorf("smoothed band ordering violated at %g: %g / %g / %g",
				x, pessimistic.P(x), center.P(x), optimistic.P(x))
		}
	}
	const c = 1.0
	planOn := func(l lifefn.Life) sched.Schedule {
		pl, err := core.NewPlanner(l, c, core.PlanOptions{})
		if err != nil {
			t.Fatal(err)
		}
		plan, err := pl.PlanBest()
		if err != nil {
			t.Fatal(err)
		}
		return plan.Schedule
	}
	truthPlan := planOn(truth)
	pessPlan := planOn(pessimistic)
	eTruth := sched.ExpectedWork(truthPlan, truth, c)
	ePess := sched.ExpectedWork(pessPlan, truth, c)
	if ePess < 0.9*eTruth {
		t.Errorf("pessimistic plan too costly: %g vs informed %g", ePess, eTruth)
	}
	// And the pessimistic plan's first period must not exceed the
	// center plan's (it assumes earlier reclaims).
	centerPlan := planOn(center)
	if pessPlan.Len() > 0 && centerPlan.Len() > 0 &&
		pessPlan.Period(0) > centerPlan.Period(0)*1.05 {
		t.Errorf("pessimistic first period %g exceeds center %g",
			pessPlan.Period(0), centerPlan.Period(0))
	}
}
