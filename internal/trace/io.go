package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV writes observations as CSV with a header row:
// duration,censored. Durations keep full float64 precision.
func WriteCSV(w io.Writer, obs []Observation) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"duration", "censored"}); err != nil {
		return fmt.Errorf("trace: writing header: %w", err)
	}
	for i, o := range obs {
		rec := []string{
			strconv.FormatFloat(o.Duration, 'g', -1, 64),
			strconv.FormatBool(o.Censored),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("trace: writing observation %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV reads observations produced by WriteCSV (or hand-authored
// traces with the same duration,censored header). Durations must be
// nonnegative finite numbers.
func ReadCSV(r io.Reader) ([]Observation, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 2
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if header[0] != "duration" || header[1] != "censored" {
		return nil, fmt.Errorf("trace: unexpected header %v, want [duration censored]", header)
	}
	var obs []Observation
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		d, err := strconv.ParseFloat(rec[0], 64)
		if err != nil || !(d >= 0) || d > 1e300 {
			return nil, fmt.Errorf("trace: line %d: bad duration %q", line, rec[0])
		}
		c, err := strconv.ParseBool(rec[1])
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad censored flag %q", line, rec[1])
		}
		obs = append(obs, Observation{Duration: d, Censored: c})
	}
	if len(obs) == 0 {
		return nil, ErrNoObservations
	}
	return obs, nil
}
