package trace

import (
	"errors"
	"math"
	"testing"

	"repro/internal/lifefn"
	"repro/internal/rng"
)

func TestSampleAbsencesWithinSupport(t *testing.T) {
	u, _ := lifefn.NewUniform(60)
	obs := SampleAbsences(u, 500, rng.New(1))
	if len(obs) != 500 {
		t.Fatal("wrong count")
	}
	for _, o := range obs {
		if o.Duration < 0 || o.Duration > 60 || o.Censored {
			t.Fatalf("bad observation %+v", o)
		}
	}
}

func TestProductLimitUncensoredIsECDF(t *testing.T) {
	// Without censoring, Kaplan–Meier reduces to 1 - ECDF.
	obs := []Observation{{Duration: 1}, {Duration: 2}, {Duration: 3}, {Duration: 4}}
	times, surv, err := ProductLimit(obs)
	if err != nil {
		t.Fatal(err)
	}
	wantS := []float64{0.75, 0.5, 0.25, 0}
	for i := range times {
		if math.Abs(surv[i]-wantS[i]) > 1e-12 {
			t.Errorf("S(%g) = %g, want %g", times[i], surv[i], wantS[i])
		}
	}
}

func TestProductLimitTies(t *testing.T) {
	obs := []Observation{{Duration: 2}, {Duration: 2}, {Duration: 5}}
	times, surv, err := ProductLimit(obs)
	if err != nil {
		t.Fatal(err)
	}
	if len(times) != 2 {
		t.Fatalf("times = %v", times)
	}
	if math.Abs(surv[0]-1.0/3) > 1e-12 || surv[1] != 0 {
		t.Errorf("surv = %v", surv)
	}
}

func TestProductLimitCensoring(t *testing.T) {
	// Classic textbook check: censored subjects leave the risk set
	// without forcing a survival drop.
	obs := []Observation{
		{Duration: 1}, {Duration: 2, Censored: true}, {Duration: 3},
	}
	times, surv, err := ProductLimit(obs)
	if err != nil {
		t.Fatal(err)
	}
	// At t=1: 3 at risk, 1 death → 2/3. At t=3: 1 at risk → 0.
	if len(times) != 2 || math.Abs(surv[0]-2.0/3) > 1e-12 || surv[1] != 0 {
		t.Errorf("times=%v surv=%v", times, surv)
	}
}

func TestProductLimitAllCensored(t *testing.T) {
	obs := []Observation{{Duration: 1, Censored: true}}
	if _, _, err := ProductLimit(obs); err == nil {
		t.Error("all-censored trace accepted")
	}
	if _, _, err := ProductLimit(nil); !errors.Is(err, ErrNoObservations) {
		t.Error("empty trace accepted")
	}
}

func TestFitLifeRecoversUniform(t *testing.T) {
	u, _ := lifefn.NewUniform(100)
	obs := SampleAbsences(u, 4000, rng.New(7))
	fit, err := FitLife(obs, FitOptions{Knots: 40})
	if err != nil {
		t.Fatal(err)
	}
	if err := lifefn.Validate(fit, lifefn.ValidateOptions{Span: EffectiveSpan(fit)}); err != nil {
		t.Errorf("fitted life invalid: %v", err)
	}
	// KS distance to the truth should be sampling-noise sized:
	// O(1/sqrt(n)) ≈ 0.016; allow 3x.
	if d := KSDistance(fit, u, 100, 400); d > 0.05 {
		t.Errorf("KS distance = %g", d)
	}
}

func TestFitLifeRecoversGeomDecreasing(t *testing.T) {
	a := math.Pow(2, 1.0/16)
	g, _ := lifefn.NewGeomDecreasing(a)
	obs := SampleAbsences(g, 4000, rng.New(11))
	fit, err := FitLife(obs, FitOptions{Knots: 48})
	if err != nil {
		t.Fatal(err)
	}
	if d := KSDistance(fit, g, 64, 400); d > 0.05 {
		t.Errorf("KS distance = %g", d)
	}
}

func TestFitLifeImprovesWithSampleSize(t *testing.T) {
	u, _ := lifefn.NewUniform(50)
	dist := func(n int) float64 {
		obs := SampleAbsences(u, n, rng.New(99))
		fit, err := FitLife(obs, FitOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return KSDistance(fit, u, 50, 300)
	}
	small, large := dist(100), dist(10000)
	if large >= small {
		t.Errorf("fit did not improve with more data: %g -> %g", small, large)
	}
}

func TestFitLifeCensored(t *testing.T) {
	// Censor the top of the distribution; the fit must stay a valid
	// life function with an unbounded (exponentially extended) tail.
	g, _ := lifefn.NewGeomDecreasing(math.Pow(2, 1.0/8))
	obs := CensorAt(SampleAbsences(g, 3000, rng.New(13)), 20)
	fit, err := FitLife(obs, FitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(fit.Horizon(), 1) {
		t.Errorf("horizon = %g, want unbounded after censoring", fit.Horizon())
	}
	// Inside the observed window the fit should still be close.
	if d := KSDistance(fit, g, 18, 200); d > 0.06 {
		t.Errorf("KS distance inside window = %g", d)
	}
}

func TestCensorAt(t *testing.T) {
	obs := []Observation{{Duration: 5}, {Duration: 15}}
	cut := CensorAt(obs, 10)
	if cut[0].Censored || !cut[1].Censored || cut[1].Duration != 10 {
		t.Errorf("censoring wrong: %+v", cut)
	}
	if obs[1].Censored {
		t.Error("CensorAt mutated input")
	}
}

func TestEffectiveSpan(t *testing.T) {
	u, _ := lifefn.NewUniform(70)
	if EffectiveSpan(u) != 70 {
		t.Error("bounded span")
	}
	g, _ := lifefn.NewGeomDecreasing(2)
	s := EffectiveSpan(g)
	if g.P(s) > 1e-3 || s <= 0 {
		t.Errorf("unbounded span = %g", s)
	}
}
