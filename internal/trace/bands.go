package trace

import (
	"fmt"
	"math"

	"repro/internal/lifefn"
)

// Band is a pointwise confidence band around a product-limit survival
// estimate, from Greenwood's variance formula
//
//	Var(Ŝ(t)) = Ŝ(t)² · Σ_{t_i <= t} d_i / (n_i (n_i - d_i)),
//
// with normal pointwise intervals clipped to [0, 1] and re-monotonized.
// Planning on the Lower curve is the pessimistic (robust) choice: it
// assumes the owner returns as early as the data allow at the given
// confidence, so the resulting schedule risks less work per period.
type Band struct {
	// Times are the death times of the underlying estimate.
	Times []float64
	// Center, Lower and Upper are the survival estimates at Times.
	Center, Lower, Upper []float64
}

// ProductLimitBand computes the Kaplan–Meier estimate together with a
// pointwise Greenwood band at the given z (e.g. 1.96 for ~95%).
func ProductLimitBand(obs []Observation, z float64) (Band, error) {
	if len(obs) == 0 {
		return Band{}, ErrNoObservations
	}
	if !(z >= 0) {
		return Band{}, fmt.Errorf("trace: negative z %g", z)
	}
	sorted := append([]Observation(nil), obs...)
	sortObservations(sorted)
	atRisk := len(sorted)
	s := 1.0
	greenwood := 0.0
	var band Band
	i := 0
	for i < len(sorted) {
		t := sorted[i].Duration
		deaths, censored := 0, 0
		//lint:allow floatcmp tied event times group exactly (Kaplan-Meier convention)
		for i < len(sorted) && sorted[i].Duration == t {
			if sorted[i].Censored {
				censored++
			} else {
				deaths++
			}
			i++
		}
		if deaths > 0 {
			n := float64(atRisk)
			d := float64(deaths)
			s *= 1 - d/n
			if n-d > 0 {
				greenwood += d / (n * (n - d))
			}
			se := s * math.Sqrt(greenwood)
			band.Times = append(band.Times, t)
			band.Center = append(band.Center, s)
			band.Lower = append(band.Lower, clamp01(s-z*se))
			band.Upper = append(band.Upper, clamp01(s+z*se))
		}
		atRisk -= deaths + censored
	}
	if len(band.Times) == 0 {
		return Band{}, fmt.Errorf("trace: all %d observations censored", len(obs))
	}
	// Re-monotonize the clipped bands (pointwise intervals need not be
	// monotone after clipping).
	enforceNonIncreasing(band.Lower)
	enforceNonIncreasing(band.Upper)
	return band, nil
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

func enforceNonIncreasing(xs []float64) {
	for i := 1; i < len(xs); i++ {
		if xs[i] > xs[i-1] {
			xs[i] = xs[i-1]
		}
	}
}

func sortObservations(obs []Observation) {
	// Deaths before censorings at ties (standard convention), as in
	// ProductLimit.
	sortSliceStable(obs, func(a, b Observation) bool {
		if a.Duration < b.Duration {
			return true
		}
		if b.Duration < a.Duration {
			return false
		}
		return !a.Censored && b.Censored
	})
}

// sortSliceStable is a tiny insertion sort keeping the package free of
// reflection-based sorting for a hot path that is never large enough to
// matter; traces are sorted once per fit.
func sortSliceStable(obs []Observation, less func(a, b Observation) bool) {
	for i := 1; i < len(obs); i++ {
		for j := i; j > 0 && less(obs[j], obs[j-1]); j-- {
			obs[j], obs[j-1] = obs[j-1], obs[j]
		}
	}
}

// FitLifeBand fits three life functions from a trace: the point
// estimate plus the pessimistic (lower) and optimistic (upper)
// Greenwood-band curves at the given z, each thinned and smoothed like
// FitLife. Planning on Pessimistic yields a schedule that stays safe if
// the trace undersampled early reclaims.
func FitLifeBand(obs []Observation, z float64, opt FitOptions) (center, pessimistic, optimistic *lifefn.Empirical, err error) {
	band, err := ProductLimitBand(obs, z)
	if err != nil {
		return nil, nil, nil, err
	}
	build := func(surv []float64) (*lifefn.Empirical, error) {
		return smoothCurve(band.Times, surv, opt)
	}
	if center, err = build(band.Center); err != nil {
		return nil, nil, nil, fmt.Errorf("trace: center band: %w", err)
	}
	if pessimistic, err = build(band.Lower); err != nil {
		return nil, nil, nil, fmt.Errorf("trace: lower band: %w", err)
	}
	if optimistic, err = build(band.Upper); err != nil {
		return nil, nil, nil, fmt.Errorf("trace: upper band: %w", err)
	}
	return center, pessimistic, optimistic, nil
}

// smoothCurve thins (times, surv) to quantile-spaced knots and builds an
// Empirical life function — the same encapsulation FitLife applies.
func smoothCurve(times, surv []float64, opt FitOptions) (*lifefn.Empirical, error) {
	knots := opt.Knots
	if knots <= 0 {
		knots = 32
	}
	ts := []float64{0}
	ps := []float64{1}
	if len(times) <= knots {
		for i := range times {
			if surv[i] < ps[len(ps)-1] {
				ts = append(ts, times[i])
				ps = append(ps, surv[i])
			}
		}
	} else {
		step := float64(len(times)-1) / float64(knots-1)
		prevIdx := -1
		for k := 0; k < knots; k++ {
			idx := int(math.Round(float64(k) * step))
			if idx <= prevIdx {
				continue
			}
			prevIdx = idx
			if surv[idx] < ps[len(ps)-1] {
				ts = append(ts, times[idx])
				ps = append(ps, surv[idx])
			}
		}
	}
	if len(ts) < 3 {
		return nil, fmt.Errorf("%w: band collapsed to %d usable knots", ErrBadSamples, len(ts))
	}
	return lifefn.NewEmpirical(ts, ps)
}

// ErrBadSamples mirrors lifefn's error for collapsed bands.
var ErrBadSamples = lifefn.ErrBadSamples
