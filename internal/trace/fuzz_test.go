package trace

import (
	"strings"
	"testing"
)

func FuzzReadCSVNeverPanics(f *testing.F) {
	f.Add("duration,censored\n1.5,false\n")
	f.Add("duration,censored\n1.5,false\n2,true\n")
	f.Add("garbage")
	f.Add("duration,censored\nNaN,false\n")
	f.Add("duration,censored\n1e400,true\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, input string) {
		obs, err := ReadCSV(strings.NewReader(input))
		if err != nil {
			return
		}
		// Whatever parses must be structurally valid.
		if len(obs) == 0 {
			t.Fatal("nil error with no observations")
		}
		for _, o := range obs {
			if !(o.Duration >= 0) || o.Duration > 1e300 {
				t.Fatalf("invalid parsed duration %g", o.Duration)
			}
		}
		// And must survive a round trip.
		var b strings.Builder
		if err := WriteCSV(&b, obs); err != nil {
			t.Fatalf("round-trip write failed: %v", err)
		}
		back, err := ReadCSV(strings.NewReader(b.String()))
		if err != nil || len(back) != len(obs) {
			t.Fatalf("round-trip read failed: %v (%d vs %d)", err, len(back), len(obs))
		}
	})
}

func FuzzProductLimitInvariants(f *testing.F) {
	f.Add([]byte{10, 20, 30})
	f.Add([]byte{5, 5, 5, 200})
	f.Add([]byte{1})
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) == 0 || len(raw) > 64 {
			return
		}
		obs := make([]Observation, len(raw))
		for i, r := range raw {
			obs[i] = Observation{
				Duration: float64(r%128) + 0.5,
				Censored: r >= 128,
			}
		}
		times, surv, err := ProductLimit(obs)
		if err != nil {
			return // all censored: fine
		}
		prevT := -1.0
		prevS := 1.0
		for i := range times {
			if times[i] <= prevT {
				t.Fatalf("times not strictly increasing: %v", times)
			}
			if surv[i] > prevS+1e-12 || surv[i] < -1e-12 {
				t.Fatalf("survival not nonincreasing in [0,1]: %v", surv)
			}
			prevT, prevS = times[i], surv[i]
		}
	})
}
