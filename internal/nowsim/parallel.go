package nowsim

import (
	"runtime"
	"sync"

	"repro/internal/lifefn"

	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/stats"
)

// MonteCarloAntithetic estimates a schedule's expected committed work
// with antithetic variates: reclaim times are drawn in negatively
// correlated pairs (u, 1-u) through the survival function's inverse, and
// the pair-average is the per-replication observation. Because realized
// work is monotone in the reclaim time, pairing provably reduces
// variance versus plain sampling at equal episode counts — the bench
// suite quantifies the savings. n is the number of pairs (2n episodes).
func MonteCarloAntithetic(policy Policy, l lifefn.Life, c float64, n int, seed uint64) MonteCarloResult {
	return MonteCarloAntitheticObs(policy, l, c, n, seed, Obs{})
}

// MonteCarloAntitheticObs is MonteCarloAntithetic with observability
// (see MonteCarloObs); both episodes of a pair trace as worker 0, in
// order. Results are identical with or without instrumentation.
func MonteCarloAntitheticObs(policy Policy, l lifefn.Life, c float64, n int, seed uint64, o Obs) MonteCarloResult {
	src := rng.New(seed)
	m := newSimMetrics(o.Metrics, c)
	batch := obs.NewSpanner(o.Sink).Start(0, -1, "mc-batch", obs.SpanAttrs{Tasks: 2 * n})
	emit := o.episodeEmitIn(0, m, batch)
	var work, lost, periods stats.Running
	var reclaimed int64
	horizon := l.Horizon()
	bound := 0.0
	if horizon > 0 && horizon < 1e300 {
		bound = horizon
	}
	invert := func(u float64) float64 {
		// Inverse-transform via bisection on the survival function,
		// mirroring rng.Source.FromSurvival for an explicit quantile.
		hi := bound
		if hi == 0 {
			hi = 1.0
			for l.P(hi) > u {
				hi *= 2
				if hi > 1e30 {
					return hi
				}
			}
		}
		lo := 0.0
		for i := 0; i < 200 && hi-lo > 1e-12*(1+hi); i++ {
			mid := lo + (hi-lo)/2
			if l.P(mid) > u {
				lo = mid
			} else {
				hi = mid
			}
		}
		return lo + (hi-lo)/2
	}
	for i := 0; i < n; i++ {
		u := src.Float64Open()
		r1 := invert(u)
		r2 := invert(1 - u)
		a := runEpisodeMaybe(policy, c, r1, emit)
		m.episodeDone()
		b := runEpisodeMaybe(policy, c, r2, emit)
		m.episodeDone()
		work.Add((a.Work + b.Work) / 2)
		lost.Add((a.Lost + b.Lost) / 2)
		periods.Add(float64(a.PeriodsCommitted+b.PeriodsCommitted) / 2)
		if a.Reclaimed {
			reclaimed++
		}
		if b.Reclaimed {
			reclaimed++
		}
	}
	batch.End(float64(2 * n))
	return MonteCarloResult{
		Work:      stats.Summarize(&work),
		Lost:      stats.Summarize(&lost),
		Periods:   stats.Summarize(&periods),
		Reclaimed: reclaimed,
		Episodes:  int64(2 * n),
	}
}

// MonteCarloParallel is MonteCarlo spread across a goroutine pool.
// Episodes are partitioned into contiguous blocks, each with an RNG
// stream derived deterministically from (seed, block index) and its own
// policy instance from factory, so the aggregate statistics are
// bit-identical for any worker count — parallelism changes wall time,
// never results. workers <= 0 uses GOMAXPROCS.
func MonteCarloParallel(factory func() Policy, owner Owner, c float64, n int, seed uint64, workers int) MonteCarloResult {
	return MonteCarloParallelObs(factory, owner, c, n, seed, workers, Obs{})
}

// MonteCarloParallelObs is MonteCarloParallel with observability.
// Goroutines never touch the sink: each block buffers its events and
// the buffers are replayed into o.Sink and o.Metrics in block order
// after the join, so the trace (like the statistics) is bit-identical
// for any worker count. Tracing a parallel run therefore holds all of
// a block's events in memory; metrics alone are cheap.
func MonteCarloParallelObs(factory func() Policy, owner Owner, c float64, n int, seed uint64, workers int, o Obs) MonteCarloResult {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		return MonteCarloObs(factory(), owner, c, n, seed, o)
	}
	// Fixed-size blocks decouple the partitioning from the worker
	// count: block b always simulates the same episodes with the same
	// stream.
	const blockSize = 1024
	numBlocks := (n + blockSize - 1) / blockSize
	observed := o.enabled()

	type blockResult struct {
		work, lost, periods stats.Running
		reclaimed           int64
		events              []EpisodeEvent
	}
	results := make([]blockResult, numBlocks)
	var wg sync.WaitGroup
	next := make(chan int, numBlocks)
	for b := 0; b < numBlocks; b++ {
		next <- b
	}
	close(next)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for b := range next {
				start := b * blockSize
				count := blockSize
				if start+count > n {
					count = n - start
				}
				src := rng.New(seed ^ (0x9e3779b97f4a7c15 * uint64(b+1)))
				policy := factory()
				res := &results[b]
				var emit func(EpisodeEvent)
				if observed {
					emit = func(e EpisodeEvent) { res.events = append(res.events, e) }
				}
				for i := 0; i < count; i++ {
					r := owner.ReclaimAfter(src)
					ep := runEpisodeMaybe(policy, c, r, emit)
					res.work.Add(ep.Work)
					res.lost.Add(ep.Lost)
					res.periods.Add(float64(ep.PeriodsCommitted))
					if ep.Reclaimed {
						res.reclaimed++
					}
				}
			}
		}()
	}
	wg.Wait()

	// Merge in block order: deterministic reduction, for the trace and
	// metrics as much as for the statistics. Each block's replay is
	// framed by an "mc-batch" span on the synthetic coordinator row
	// (worker -1); its time axis is the episode index, which stays
	// monotone where the per-episode sim times restart at zero.
	var work, lost, periods stats.Running
	var reclaimed int64
	m := newSimMetrics(o.Metrics, c)
	sp := obs.NewSpanner(o.Sink)
	for b := range results {
		work.Merge(results[b].work)
		lost.Merge(results[b].lost)
		periods.Merge(results[b].periods)
		reclaimed += results[b].reclaimed
		start := b * blockSize
		count := blockSize
		if start+count > n {
			count = n - start
		}
		batch := sp.Start(float64(start), -1, "mc-batch", obs.SpanAttrs{Period: b, Tasks: count})
		if emitMerged := o.episodeEmitIn(0, m, batch); emitMerged != nil {
			for _, e := range results[b].events {
				emitMerged(e)
			}
		}
		batch.End(float64(start + count))
	}
	if m != nil {
		m.episodes.Add(uint64(n))
	}
	return MonteCarloResult{
		Work:      stats.Summarize(&work),
		Lost:      stats.Summarize(&lost),
		Periods:   stats.Summarize(&periods),
		Reclaimed: reclaimed,
		Episodes:  int64(n),
	}
}
