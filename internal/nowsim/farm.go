package nowsim

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/rng"
	"repro/internal/sched"
)

// Worker describes one borrowable workstation in a farm: how long its
// owner stays at the machine between absences, how long absences last
// (the episode opportunities), and which chunking policy the
// coordinator applies to it.
type Worker struct {
	ID int
	// Owner samples the reclaim time of each episode.
	Owner Owner
	// BusySampler samples how long the owner occupies the machine
	// between episodes. A nil sampler means instant turnaround.
	BusySampler func(r *rng.Source) float64
	// PolicyFactory builds a fresh policy for each episode.
	PolicyFactory func() Policy
	// Speed is the workstation's relative compute speed: a bundle of
	// task time w occupies w/Speed wall time on this worker (the
	// communication overhead is wall time and does not scale). Zero
	// means 1.0. NOWs are heterogeneous; the model's task durations are
	// reference-machine durations.
	Speed float64
}

// speed returns the worker's effective speed factor.
func (w Worker) speed() float64 {
	if w.Speed <= 0 {
		return 1
	}
	return w.Speed
}

// FarmConfig configures a data-parallel farm run.
type FarmConfig struct {
	Workers  []Worker
	Overhead float64
	Seed     uint64
	// MaxTime aborts the run if the pool is not drained by then.
	// Zero means 1e9.
	MaxTime float64
	// Obs is the optional observability bundle. When enabled, the run
	// streams episode-start/dispatch/commit/kill/steal/voluntary-end
	// events to Obs.Sink tagged with Worker.ID (IDs should be unique:
	// the Chrome exporter keys timeline rows and open period spans by
	// them), and Obs.Metrics accumulates the farm-wide cs_* series plus
	// per-worker committed/lost/overhead series. Instrumentation never
	// changes the simulation: results are identical with or without it.
	Obs Obs
}

// WorkerStats summarizes one worker's participation.
type WorkerStats struct {
	ID             int
	Episodes       int
	TasksCompleted int
	TasksLost      int
	CommittedWork  float64
	LostWork       float64
	Overhead       float64
}

// FarmResult summarizes a farm run.
type FarmResult struct {
	// Makespan is when the last task committed (or MaxTime on abort).
	Makespan float64
	// Drained reports whether every task committed before MaxTime.
	Drained bool
	// TasksCompleted across all workers.
	TasksCompleted int
	// CommittedWork, LostWork and OverheadTime account for how borrowed
	// time was spent.
	CommittedWork float64
	LostWork      float64
	OverheadTime  float64
	// Episodes across all workers.
	Episodes  int
	PerWorker []WorkerStats
}

// Efficiency returns committed work divided by total borrowed time
// (committed + lost + overhead); 0 when nothing was borrowed.
func (r FarmResult) Efficiency() float64 {
	total := r.CommittedWork + r.LostWork + r.OverheadTime
	if total <= 0 {
		return 0
	}
	return r.CommittedWork / total
}

// RunFarm executes a data-parallel job on a farm of borrowed
// workstations: each worker alternates owner-present stretches with
// cycle-stealing episodes; during an episode the coordinator dispatches
// task bundles under the worker's policy, with the draconian
// kill-on-reclaim semantics; killed bundles return to the shared pool
// for re-execution elsewhere. The run ends when every task has
// committed or at MaxTime.
func RunFarm(cfg FarmConfig, pool *TaskPool) (FarmResult, error) {
	if len(cfg.Workers) == 0 {
		return FarmResult{}, errors.New("nowsim: farm needs at least one worker")
	}
	if cfg.Overhead < 0 {
		return FarmResult{}, fmt.Errorf("nowsim: negative overhead %g", cfg.Overhead)
	}
	maxTime := cfg.MaxTime
	if maxTime <= 0 {
		maxTime = 1e9
	}
	var (
		eng      Engine
		res      FarmResult
		inFlight int
		parked   []*farmWorker
		done     bool
	)
	res.PerWorker = make([]WorkerStats, len(cfg.Workers))
	root := rng.New(cfg.Seed)

	workers := make([]*farmWorker, len(cfg.Workers))
	for i := range cfg.Workers {
		w := &farmWorker{
			spec:  cfg.Workers[i],
			stats: &res.PerWorker[i],
			src:   root.Split(),
			idx:   i,
		}
		w.stats.ID = cfg.Workers[i].ID
		workers[i] = w
	}
	fo := newFarmObs(cfg.Obs, cfg.Overhead, cfg.Workers)

	checkDone := func() {
		if !done && pool.Remaining() == 0 && inFlight == 0 {
			done = true
			res.Drained = true
			res.Makespan = eng.Now()
		}
	}
	var wake func()

	// startEpisode begins a cycle-stealing episode on worker w.
	var startEpisode func(w *farmWorker)
	// park idles a worker whose pool is empty until a requeue wakes it.
	park := func(w *farmWorker) {
		fo.parked(w, eng.Now())
		parked = append(parked, w)
	}
	wake = func() {
		for _, w := range parked {
			ww := w
			fo.woke(ww, eng.Now())
			eng.After(0, func() { startEpisode(ww) })
		}
		parked = parked[:0]
	}

	startEpisode = func(w *farmWorker) {
		if done {
			return
		}
		if pool.Remaining() == 0 {
			park(w)
			return
		}
		policy := w.spec.PolicyFactory()
		policy.Reset()
		w.stats.Episodes++
		res.Episodes++
		fo.episodeStart(w, eng.Now())
		episodeStart := eng.Now()
		reclaimAt := episodeStart + w.spec.Owner.ReclaimAfter(w.src)
		reclaimed := false
		var ownerEv Handle
		endEpisode := func(byOwner bool) {
			if byOwner {
				reclaimed = true
			} else {
				ownerEv.Cancel()
			}
			fo.episodeEnd(w, eng.Now())
			// Owner occupies the machine; return for another episode
			// afterwards.
			busy := 0.0
			if w.spec.BusySampler != nil {
				busy = w.spec.BusySampler(w.src)
			}
			if byOwner && busy == 0 {
				// Ensure strictly positive turnaround so reclaim
				// actually interrupts.
				busy = 1e-9
			}
			if eng.Now()+busy <= maxTime && !done {
				eng.After(busy, func() { startEpisode(w) })
			}
		}

		var dispatch func()
		dispatch = func() {
			if done || reclaimed {
				return
			}
			t, ok := policy.NextPeriod(eng.Now() - episodeStart)
			if !ok || t <= cfg.Overhead {
				fo.voluntaryEnd(w, eng.Now())
				endEpisode(false)
				return
			}
			// A period of wall length t leaves t ⊖ c for computing, which
			// at this worker's speed covers (t ⊖ c)·speed reference task
			// time.
			bundle, used := pool.TakeBundle(sched.PositiveSub(t, cfg.Overhead) * w.spec.speed())
			if len(bundle) == 0 {
				fo.voluntaryEnd(w, eng.Now())
				endEpisode(false)
				return
			}
			period := fo.dispatch(w, eng.Now(), t, bundle)
			inFlight++
			periodEnd := eng.Now() + t
			if periodEnd < reclaimAt {
				eng.At(periodEnd, func() {
					inFlight--
					w.stats.TasksCompleted += len(bundle)
					w.stats.CommittedWork += used
					w.stats.Overhead += cfg.Overhead
					res.TasksCompleted += len(bundle)
					res.CommittedWork += used
					res.OverheadTime += cfg.Overhead
					fo.commit(w, period, eng.Now(), t, used, bundle)
					pool.Commit(bundle)
					checkDone()
					if done {
						res.Makespan = eng.Now()
						return
					}
					dispatch()
				})
				return
			}
			// Owner returns mid-period: bundle destroyed and requeued.
			eng.At(reclaimAt, func() {
				inFlight--
				w.stats.TasksLost += len(bundle)
				w.stats.LostWork += used
				res.LostWork += used
				fo.kill(w, period, eng.Now(), t, used, bundle)
				pool.Requeue(bundle)
				wake()
				endEpisode(true)
			})
		}
		dispatch()
	}

	for _, w := range workers {
		busy := 0.0
		if w.spec.BusySampler != nil {
			busy = w.spec.BusySampler(w.src)
		}
		ww := w
		eng.After(busy, func() { startEpisode(ww) })
	}
	eng.Run(maxTime)
	if !res.Drained {
		res.Makespan = math.Min(eng.Now(), maxTime)
	}
	fo.finish(&eng, &res)
	return res, nil
}

type farmWorker struct {
	spec  Worker
	stats *WorkerStats
	src   *rng.Source
	idx   int
}
