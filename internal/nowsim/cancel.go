package nowsim

import (
	"context"
	"strconv"

	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/stats"
)

// cancelCheckStride is how many episodes run between context checks in
// MonteCarloCtx. Episodes are microseconds of work, so a stride of 128
// keeps the cancellation latency far below any realistic request
// deadline while making the check's cost unmeasurable.
const cancelCheckStride = 128

// MonteCarloCtx is MonteCarloObs with cooperative cancellation: it
// checks ctx every cancelCheckStride episodes and, when the context
// ends, stops early and returns the statistics accumulated so far
// together with ctx's error. A run that completes all n episodes
// returns a nil error and a result bit-identical to MonteCarloObs with
// the same arguments — cancellation is the only behavioural difference,
// so the determinism guarantees carry over unchanged.
//
// The long-running plan/estimate service uses this to abandon
// simulations whose requester has gone away (client disconnect or
// per-request deadline) without tearing down the worker that ran them.
func MonteCarloCtx(ctx context.Context, policy Policy, owner Owner, c float64, n int, seed uint64, o Obs) (MonteCarloResult, error) {
	// Request-trace attribution: when ctx carries an obs.ReqTrace, the
	// whole run is one "mc" phase annotated with the episode count.
	// Wall-clock reads live inside obs, keeping this package free of
	// time sources (the determinism contract); on an untraced context
	// endMC is a no-op closure and the per-episode loop is untouched.
	endMC := obs.StartPhase(ctx, "mc")
	src := rng.New(seed)
	m := newSimMetrics(o.Metrics, c)
	batch := obs.NewSpanner(o.Sink).Start(0, -1, "mc-batch", obs.SpanAttrs{Tasks: n})
	emit := o.episodeEmitIn(0, m, batch)
	var work, lost, periods stats.Running
	var reclaimed int64
	var err error
	done := 0
	for ; done < n; done++ {
		if done%cancelCheckStride == 0 {
			if err = ctx.Err(); err != nil {
				break
			}
		}
		r := owner.ReclaimAfter(src)
		res := runEpisodeMaybe(policy, c, r, emit)
		m.episodeDone()
		work.Add(res.Work)
		lost.Add(res.Lost)
		periods.Add(float64(res.PeriodsCommitted))
		if res.Reclaimed {
			reclaimed++
		}
	}
	batch.End(float64(done))
	if err != nil {
		endMC("episodes", strconv.Itoa(done), "cancelled", "true")
	} else {
		endMC("episodes", strconv.Itoa(done))
	}
	return MonteCarloResult{
		Work:      stats.Summarize(&work),
		Lost:      stats.Summarize(&lost),
		Periods:   stats.Summarize(&periods),
		Reclaimed: reclaimed,
		Episodes:  int64(done),
	}, err
}
