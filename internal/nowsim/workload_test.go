package nowsim

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestNewWorkloadBounds(t *testing.T) {
	src := rng.New(1)
	for _, dist := range []DurationDist{DistUniform, DistLogNormal, DistBimodal, DistParetoCapped} {
		spec := WorkloadSpec{Tasks: 2000, Dist: dist, Lo: 0.5, Hi: 8, Mu: 0.5, Sigma: 0.8}
		pool, err := NewWorkload(spec, src)
		if err != nil {
			t.Fatalf("%v: %v", dist, err)
		}
		if pool.Remaining() != 2000 {
			t.Fatalf("%v: %d tasks", dist, pool.Remaining())
		}
		for _, task := range pool.queue {
			if task.Duration < 0.5 || task.Duration > 8 {
				t.Fatalf("%v: duration %g outside [0.5, 8]", dist, task.Duration)
			}
		}
	}
}

func TestNewWorkloadDistributionShapes(t *testing.T) {
	src := rng.New(2)
	// Bimodal: ~80% of tasks in the bottom quarter of the range.
	pool, err := NewWorkload(WorkloadSpec{Tasks: 10_000, Dist: DistBimodal, Lo: 1, Hi: 9}, src)
	if err != nil {
		t.Fatal(err)
	}
	small := 0
	for _, task := range pool.queue {
		if task.Duration < 3 {
			small++
		}
	}
	frac := float64(small) / 10_000
	if frac < 0.75 || frac > 0.85 {
		t.Errorf("bimodal small-mode fraction = %g, want ~0.8", frac)
	}
	// Pareto: mean well above Lo but median close to it.
	pool2, err := NewWorkload(WorkloadSpec{Tasks: 10_000, Dist: DistParetoCapped, Lo: 1, Hi: 100}, src)
	if err != nil {
		t.Fatal(err)
	}
	mean := pool2.RemainingWork() / 10_000
	if mean < 1.5 || mean > 4 {
		t.Errorf("pareto mean = %g", mean)
	}
}

func TestNewWorkloadErrors(t *testing.T) {
	src := rng.New(3)
	if _, err := NewWorkload(WorkloadSpec{Tasks: -1, Dist: DistUniform, Lo: 1, Hi: 2}, src); err == nil {
		t.Error("negative tasks accepted")
	}
	if _, err := NewWorkload(WorkloadSpec{Tasks: 1, Dist: DistUniform, Lo: 0, Hi: 2}, src); err == nil {
		t.Error("zero Lo accepted")
	}
	if _, err := NewWorkload(WorkloadSpec{Tasks: 1, Dist: DistUniform, Lo: 3, Hi: 2}, src); err == nil {
		t.Error("inverted range accepted")
	}
}

func TestDurationDistStrings(t *testing.T) {
	names := map[DurationDist]string{
		DistUniform: "uniform", DistLogNormal: "lognormal",
		DistBimodal: "bimodal", DistParetoCapped: "pareto-capped",
		DurationDist(99): "unknown",
	}
	//lint:allow determinism iteration order does not affect assertions
	for d, want := range names {
		if d.String() != want {
			t.Errorf("%d.String() = %q, want %q", d, d.String(), want)
		}
	}
}

func TestTakeBundleBestFitPacksTighter(t *testing.T) {
	// Queue: 7, 2, 5, 3 with budget 10. FIFO takes 7+2=9 (5 doesn't
	// fit); best-fit takes 7+3 = 10 exactly.
	mk := func() *TaskPool {
		p := &TaskPool{}
		for i, d := range []float64{7, 2, 5, 3} {
			p.Push(Task{ID: i, Duration: d})
		}
		return p
	}
	fifoPool := mk()
	_, fifoUsed := fifoPool.TakeBundle(10)
	bfPool := mk()
	bundle, bfUsed := bfPool.TakeBundleBestFit(10, 0)
	if bfUsed <= fifoUsed {
		t.Errorf("best-fit used %g, FIFO used %g", bfUsed, fifoUsed)
	}
	if math.Abs(bfUsed-10) > 1e-12 || len(bundle) != 2 {
		t.Errorf("best-fit bundle = %v (%g)", bundle, bfUsed)
	}
	// Remaining queue preserved in order: 2, 5.
	if bfPool.Remaining() != 2 || bfPool.queue[0].Duration != 2 || bfPool.queue[1].Duration != 5 {
		t.Errorf("best-fit queue after = %v", bfPool.queue)
	}
	if math.Abs(bfPool.RemainingWork()-7) > 1e-12 {
		t.Errorf("remaining work = %g", bfPool.RemainingWork())
	}
}

func TestTakeBundleBestFitEmptyAndOversized(t *testing.T) {
	p := &TaskPool{}
	if b, used := p.TakeBundleBestFit(10, 8); b != nil || used != 0 {
		t.Error("empty pool returned a bundle")
	}
	p.Push(Task{ID: 0, Duration: 50})
	if b, _ := p.TakeBundleBestFit(10, 8); b != nil {
		t.Error("oversized task packed")
	}
	if p.Remaining() != 1 {
		t.Error("oversized task lost from queue")
	}
}

func TestTakeBundleBestFitWindowRespected(t *testing.T) {
	// With window 2 the best-fit may only see the first two tasks.
	p := &TaskPool{}
	for i, d := range []float64{2, 3, 10} {
		p.Push(Task{ID: i, Duration: d})
	}
	bundle, used := p.TakeBundleBestFit(10, 2)
	if used != 5 || len(bundle) != 2 {
		t.Errorf("window violated: bundle %v used %g", bundle, used)
	}
}
