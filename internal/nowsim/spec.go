package nowsim

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/lifefn"
)

// PolicySpec is a parsed policy specification string. The textual specs
// ("guideline", "progressive", "fixed:<chunk>", "allatonce") are shared
// by cssim and csfarm; parsing them here keeps the two CLIs' policy
// vocabularies from drifting apart.
type PolicySpec struct {
	// Name is the canonical spec string (e.g. "fixed:25").
	Name string
	// Factory builds a fresh policy instance per episode/worker.
	Factory func() Policy
	// Plan is the guideline plan when Name is "guideline", else nil;
	// callers use it for the analytic E(S; p) comparison.
	Plan *core.Plan
}

// ParsePolicy resolves a policy spec against a life function and
// overhead. Accepted specs:
//
//	guideline       — plan with core.PlanBest on l and play the schedule
//	progressive     — replan adaptively as the episode survives
//	                  (ScanPoints 16: cheaper than a one-shot plan,
//	                  since it replans repeatedly)
//	fixed:<chunk>   — constant period length <chunk>
//	allatonce       — one huge period (the naive baseline)
//
// The progressive factory falls back to fixed chunks of 10·c when
// progressive planning is infeasible for l.
func ParsePolicy(spec string, l lifefn.Life, c float64, opt core.PlanOptions) (PolicySpec, error) {
	spec = strings.TrimSpace(spec)
	switch {
	case spec == "guideline":
		pl, err := core.NewPlanner(l, c, opt)
		if err != nil {
			return PolicySpec{}, err
		}
		plan, err := pl.PlanBest()
		if err != nil {
			return PolicySpec{}, fmt.Errorf("nowsim: planning for %s: %w", l, err)
		}
		return PolicySpec{
			Name: spec,
			Factory: func() Policy {
				return NewSchedulePolicy(plan.Schedule, "guideline")
			},
			Plan: &plan,
		}, nil
	case spec == "progressive":
		popt := opt
		if popt.ScanPoints <= 0 {
			popt.ScanPoints = 16
		}
		return PolicySpec{
			Name: spec,
			Factory: func() Policy {
				p, err := NewProgressivePolicy(l, c, popt)
				if err != nil {
					return &FixedChunkPolicy{Chunk: 10 * c}
				}
				return p
			},
		}, nil
	case strings.HasPrefix(spec, "fixed:"):
		chunk, err := strconv.ParseFloat(strings.TrimPrefix(spec, "fixed:"), 64)
		if err != nil || !(chunk > 0) || math.IsInf(chunk, 0) {
			return PolicySpec{}, fmt.Errorf("nowsim: bad fixed chunk in %q", spec)
		}
		return PolicySpec{
			Name:    spec,
			Factory: func() Policy { return &FixedChunkPolicy{Chunk: chunk} },
		}, nil
	case spec == "allatonce":
		return PolicySpec{
			Name:    spec,
			Factory: func() Policy { return &FixedChunkPolicy{Chunk: 1e6} },
		}, nil
	default:
		return PolicySpec{}, fmt.Errorf("nowsim: unknown policy %q (want guideline, progressive, fixed:<chunk>, or allatonce)", spec)
	}
}

// ParseDist resolves a task-duration distribution name for workload
// construction.
func ParseDist(name string) (DurationDist, error) {
	switch name {
	case "uniform":
		return DistUniform, nil
	case "lognormal":
		return DistLogNormal, nil
	case "bimodal":
		return DistBimodal, nil
	case "pareto", "pareto-capped":
		// "pareto-capped" is the canonical String() form; accept it so
		// every parsed distribution's name re-parses.
		return DistParetoCapped, nil
	default:
		return 0, fmt.Errorf("nowsim: unknown distribution %q (want uniform, lognormal, bimodal, or pareto)", name)
	}
}

// BuildLife resolves a life-function name with the standard CLI
// parameterization: lifespan for the bounded families, halfLife for
// geometric decay, d for the polynomial exponent.
func BuildLife(name string, lifespan, halfLife float64, d int) (lifefn.Life, error) {
	switch name {
	case "uniform":
		return lifefn.NewUniform(lifespan)
	case "poly":
		return lifefn.NewPoly(d, lifespan)
	case "geomdec":
		if !(halfLife > 0) {
			return nil, fmt.Errorf("nowsim: half-life must be positive, got %g", halfLife)
		}
		return lifefn.NewGeomDecreasing(math.Pow(2, 1/halfLife))
	case "geominc":
		return lifefn.NewGeomIncreasing(lifespan)
	default:
		return nil, fmt.Errorf("nowsim: unknown life function %q (want uniform, poly, geomdec, or geominc)", name)
	}
}
