package nowsim_test

import (
	"fmt"

	"repro/internal/nowsim"
	"repro/internal/sched"
)

// One deterministic episode: the owner returns at time 8, killing the
// third period.
func ExampleRunEpisode() {
	schedule := sched.MustNew(4, 3, 2)
	policy := nowsim.NewSchedulePolicy(schedule, "demo")
	res := nowsim.RunEpisode(policy, 1, 8)
	fmt.Printf("work=%.0f lost=%.0f committed=%d/%d reclaimed=%v\n",
		res.Work, res.Lost, res.PeriodsCommitted, res.PeriodsDispatched, res.Reclaimed)
	// Output: work=5 lost=1 committed=2/3 reclaimed=true
}

// Task-level dispatch: indivisible tasks pack into period budgets; a
// killed bundle returns to the pool.
func ExampleRunTaskEpisode() {
	pool, _ := nowsim.NewUniformTasks(6, 2) // six 2-unit tasks
	schedule := sched.MustNew(5, 5)         // budgets of 4 after overhead
	policy := nowsim.NewSchedulePolicy(schedule, "demo")
	res := nowsim.RunTaskEpisode(policy, pool, 1, 7) // reclaim mid-second-period
	fmt.Printf("completed=%d lost=%d backInPool=%d\n",
		res.TasksCompleted, res.TasksLost, pool.Remaining())
	// Output: completed=2 lost=2 backInPool=4
}
