package nowsim

import (
	"math"
	"testing"

	"repro/internal/lifefn"
	"repro/internal/sched"
)

func TestAntitheticUnbiased(t *testing.T) {
	l, _ := lifefn.NewUniform(200)
	s := sched.MustNew(30, 28, 26, 24)
	pol := NewSchedulePolicy(s, "anti")
	res := MonteCarloAntithetic(pol, l, 1, 40_000, 17)
	analytic := sched.ExpectedWork(s, l, 1)
	z := math.Abs(res.Work.Mean-analytic) / res.Work.StdErr
	if z > 4.5 {
		t.Errorf("antithetic mean %g vs analytic %g (z=%g)", res.Work.Mean, analytic, z)
	}
	if res.Episodes != 80_000 {
		t.Errorf("episodes = %d", res.Episodes)
	}
}

func TestAntitheticReducesVariance(t *testing.T) {
	// At equal episode budgets, the antithetic estimator's standard
	// error must beat plain sampling's (realized work is monotone in
	// the reclaim time, so the pairs are negatively correlated).
	l, _ := lifefn.NewUniform(300)
	s := sched.MustNew(40, 38, 36, 34, 32)
	const pairs = 10_000
	anti := MonteCarloAntithetic(NewSchedulePolicy(s, "anti"), l, 1, pairs, 23)
	plain := MonteCarlo(NewSchedulePolicy(s, "plain"), LifeOwner{Life: l}, 1, 2*pairs, 23)
	// Compare standard errors of the mean at equal total episodes.
	if anti.Work.StdErr >= plain.Work.StdErr {
		t.Errorf("antithetic SE %g not below plain SE %g", anti.Work.StdErr, plain.Work.StdErr)
	}
	// The reduction should be substantial, not marginal.
	if anti.Work.StdErr > 0.8*plain.Work.StdErr {
		t.Logf("note: variance reduction modest: %g vs %g", anti.Work.StdErr, plain.Work.StdErr)
	}
}

func TestAntitheticUnboundedHorizon(t *testing.T) {
	l, _ := lifefn.NewGeomDecreasing(math.Pow(2, 1.0/16))
	s := sched.MustNew(8, 8, 8, 8, 8, 8)
	res := MonteCarloAntithetic(NewSchedulePolicy(s, "anti"), l, 1, 20_000, 31)
	analytic := sched.ExpectedWork(s, l, 1)
	z := math.Abs(res.Work.Mean-analytic) / res.Work.StdErr
	if z > 4.5 {
		t.Errorf("unbounded antithetic mean %g vs analytic %g (z=%g)", res.Work.Mean, analytic, z)
	}
}
