package nowsim

import (
	"math"
	"testing"

	"repro/internal/lifefn"
	"repro/internal/sched"
)

func TestMonteCarloParallelDeterministicAcrossWorkerCounts(t *testing.T) {
	l, _ := lifefn.NewUniform(200)
	s := sched.MustNew(30, 28, 26, 24)
	factory := func() Policy { return NewSchedulePolicy(s, "par") }
	owner := LifeOwner{Life: l}
	ref := MonteCarloParallel(factory, owner, 1, 20_000, 31, 2)
	for _, workers := range []int{1 + 2, 4, 7, 16} {
		got := MonteCarloParallel(factory, owner, 1, 20_000, 31, workers)
		//lint:allow floatcmp worker count must not change results: bit-identical
		if got.Work.Mean != ref.Work.Mean || got.Reclaimed != ref.Reclaimed {
			t.Errorf("workers=%d: mean %.12g vs %.12g, reclaimed %d vs %d",
				workers, got.Work.Mean, ref.Work.Mean, got.Reclaimed, ref.Reclaimed)
		}
		if math.Abs(got.Work.StdDev-ref.Work.StdDev) > 1e-9 {
			t.Errorf("workers=%d: stddev differs", workers)
		}
	}
}

func TestMonteCarloParallelMatchesAnalytic(t *testing.T) {
	l, _ := lifefn.NewUniform(500)
	s := sched.MustNew(40, 38, 36, 34, 32)
	factory := func() Policy { return NewSchedulePolicy(s, "par") }
	res := MonteCarloParallel(factory, LifeOwner{Life: l}, 1, 100_000, 7, 8)
	analytic := sched.ExpectedWork(s, l, 1)
	z := math.Abs(res.Work.Mean-analytic) / res.Work.StdErr
	if z > 4.5 {
		t.Errorf("parallel MC mean %g vs analytic %g (z=%g)", res.Work.Mean, analytic, z)
	}
	if res.Episodes != 100_000 {
		t.Errorf("episodes = %d", res.Episodes)
	}
}

func TestMonteCarloParallelSmallN(t *testing.T) {
	l, _ := lifefn.NewUniform(50)
	s := sched.MustNew(10)
	factory := func() Policy { return NewSchedulePolicy(s, "par") }
	res := MonteCarloParallel(factory, LifeOwner{Life: l}, 1, 3, 1, 8)
	if res.Episodes != 3 || res.Work.N != 3 {
		t.Errorf("small-n result: %+v", res)
	}
	// workers <= 1 falls back to the serial path.
	serial := MonteCarloParallel(factory, LifeOwner{Life: l}, 1, 100, 1, 1)
	direct := MonteCarlo(NewSchedulePolicy(s, "par"), LifeOwner{Life: l}, 1, 100, 1)
	//lint:allow floatcmp serial fallback must match exactly
	if serial.Work.Mean != direct.Work.Mean {
		t.Error("workers=1 does not match serial MonteCarlo")
	}
}
