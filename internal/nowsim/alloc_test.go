package nowsim

import (
	"math"
	"testing"

	"repro/internal/sched"
)

// The engine and episode loops are annotated //cs:hotpath and held to a
// constant allocation budget; these tests pin the budget at runtime so
// a regression fails before the linter even runs.

// TestEngineSteadyStateAllocs: once the free list and the inline boot
// array are primed, a schedule/fire cycle allocates nothing.
func TestEngineSteadyStateAllocs(t *testing.T) {
	var eng Engine
	nop := func() {}
	// Prime: first events and any queue growth allocate once.
	eng.After(1, nop)
	eng.RunAll()
	avg := testing.AllocsPerRun(200, func() {
		for i := 0; i < 64; i++ {
			eng.After(1, nop)
			eng.Step()
		}
	})
	if avg != 0 {
		t.Fatalf("steady-state schedule/fire cycle allocates %.2f/run, want 0", avg)
	}
}

// TestEngineCanceledDrainRecycles: events drained as canceled (by Run's
// peek loop) return to the free list like fired ones do.
func TestEngineCanceledDrainRecycles(t *testing.T) {
	var eng Engine
	nop := func() {}
	h := eng.After(1, nop)
	h.Cancel()
	eng.RunAll()
	avg := testing.AllocsPerRun(200, func() {
		h := eng.After(1, nop)
		h.Cancel()
		eng.RunAll()
	})
	if avg != 0 {
		t.Fatalf("schedule/cancel/drain cycle allocates %.2f/run, want 0", avg)
	}
}

// TestStaleHandleCancelIsNoOp: a handle to a fired event must not
// cancel the event's next incarnation after recycling.
func TestStaleHandleCancelIsNoOp(t *testing.T) {
	var eng Engine
	fired := 0
	h1 := eng.At(1, func() { fired++ })
	eng.RunAll()
	if fired != 1 {
		t.Fatalf("first event fired %d times, want 1", fired)
	}
	// This scheduling reuses the recycled event; the stale handle's
	// generation no longer matches.
	eng.At(2, func() { fired++ })
	h1.Cancel()
	eng.RunAll()
	if fired != 2 {
		t.Fatalf("stale Cancel suppressed the recycled event: fired %d times, want 2", fired)
	}
}

// TestEpisodeAllocsConstantInPeriods: an episode's allocations must not
// scale with its period count — the per-period commit closure is
// hoisted and events are recycled, so a 1024-period episode costs the
// same handful of allocations as a short one.
func TestEpisodeAllocsConstantInPeriods(t *testing.T) {
	periods := make([]float64, 1024)
	for i := range periods {
		periods[i] = 2
	}
	s, err := sched.New(periods...)
	if err != nil {
		t.Fatal(err)
	}
	pol := NewSchedulePolicy(s, "alloc-test")
	var res EpisodeResult
	avg := testing.AllocsPerRun(100, func() {
		res = RunEpisode(pol, 0.5, math.Inf(1))
	})
	if res.PeriodsCommitted != 1024 {
		t.Fatalf("episode committed %d periods, want 1024", res.PeriodsCommitted)
	}
	// Budget: episode setup (engine state, hoisted closures, owner and
	// period events) — independent of the 1024 periods played.
	if avg > 16 {
		t.Fatalf("1024-period episode allocates %.1f/run, want a period-independent constant <= 16", avg)
	}
}
