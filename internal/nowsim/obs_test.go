package nowsim

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/lifefn"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/sched"
)

func testLife(t testing.TB) lifefn.Life {
	t.Helper()
	l, err := lifefn.NewUniform(64)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// TestRunEpisodeObsMatchesRecorded: the obs event stream is exactly the
// recorded log, tagged with the worker index.
func TestRunEpisodeObsMatchesRecorded(t *testing.T) {
	s := sched.MustNew(4, 3, 2)
	var buf obs.BufferSink
	res := RunEpisodeObs(NewSchedulePolicy(s, "obs"), 1, 8, 7, Obs{Sink: &buf})
	plain, log := RunEpisodeRecorded(NewSchedulePolicy(s, "rec"), 1, 8)
	if res != plain {
		t.Errorf("observed result %+v != recorded result %+v", res, plain)
	}
	if len(buf.Events) != len(log) {
		t.Fatalf("sink got %d events, recorder %d", len(buf.Events), len(log))
	}
	for i := range log {
		want := log[i].TraceEvent(7)
		if buf.Events[i] != want {
			t.Errorf("event %d = %+v, want %+v", i, buf.Events[i], want)
		}
	}
}

// TestMonteCarloDeterminism: identical seeds produce identical results
// with the sink enabled vs. disabled, and byte-identical JSONL traces
// across repeated runs — the satellite regression the ISSUE demands.
func TestMonteCarloDeterminism(t *testing.T) {
	l := testLife(t)
	owner := LifeOwner{Life: l}
	pol := func() Policy { return &FixedChunkPolicy{Chunk: 7} }

	run := func(o Obs) MonteCarloResult { return MonteCarloObs(pol(), owner, 1, 500, 42, o) }
	plain := MonteCarlo(pol(), owner, 1, 500, 42)

	trace := func() ([]byte, MonteCarloResult) {
		var buf bytes.Buffer
		sink := obs.NewJSONLSink(&buf)
		res := run(Obs{Sink: sink, Metrics: obs.NewRegistry()})
		if err := sink.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes(), res
	}
	b1, r1 := trace()
	b2, r2 := trace()
	if !bytes.Equal(b1, b2) {
		t.Error("JSONL traces from identical seeds are not byte-identical")
	}
	if len(b1) == 0 {
		t.Fatal("trace is empty")
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Errorf("observed runs differ: %+v vs %+v", r1, r2)
	}
	if !reflect.DeepEqual(r1, plain) {
		t.Errorf("sink-enabled result %+v != sink-disabled result %+v", r1, plain)
	}
}

func TestMonteCarloAntitheticDeterminism(t *testing.T) {
	l := testLife(t)
	pol := func() Policy { return &FixedChunkPolicy{Chunk: 7} }
	plain := MonteCarloAntithetic(pol(), l, 1, 200, 99)

	trace := func() ([]byte, MonteCarloResult) {
		var buf bytes.Buffer
		sink := obs.NewJSONLSink(&buf)
		res := MonteCarloAntitheticObs(pol(), l, 1, 200, 99, Obs{Sink: sink})
		if err := sink.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes(), res
	}
	b1, r1 := trace()
	b2, r2 := trace()
	if !bytes.Equal(b1, b2) {
		t.Error("antithetic JSONL traces are not byte-identical")
	}
	if !reflect.DeepEqual(r1, r2) || !reflect.DeepEqual(r1, plain) {
		t.Errorf("antithetic observed %+v, repeat %+v, plain %+v", r1, r2, plain)
	}
}

// TestMonteCarloParallelObsDeterminism: the parallel harness replays
// block buffers in order, so trace and results are identical for any
// worker count and identical to the sequential run.
func TestMonteCarloParallelObsDeterminism(t *testing.T) {
	l := testLife(t)
	owner := LifeOwner{Life: l}
	factory := func() Policy { return &FixedChunkPolicy{Chunk: 7} }

	trace := func(workers int) ([]byte, MonteCarloResult) {
		var buf bytes.Buffer
		sink := obs.NewJSONLSink(&buf)
		res := MonteCarloParallelObs(factory, owner, 1, 3000, 5, workers, Obs{Sink: sink})
		if err := sink.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes(), res
	}
	b2, r2 := trace(2)
	b8, r8 := trace(8)
	if !bytes.Equal(b2, b8) {
		t.Error("parallel traces differ across worker counts")
	}
	if !reflect.DeepEqual(r2, r8) {
		t.Errorf("parallel results differ across worker counts: %+v vs %+v", r2, r8)
	}
	plain := MonteCarloParallel(factory, owner, 1, 3000, 5, 4)
	if !reflect.DeepEqual(r2, plain) {
		t.Errorf("observed parallel %+v != plain parallel %+v", r2, plain)
	}
}

func farmConfig(t testing.TB, o Obs) (FarmConfig, *TaskPool) {
	t.Helper()
	l, err := lifefn.NewUniform(60)
	if err != nil {
		t.Fatal(err)
	}
	ws := make([]Worker, 4)
	for i := range ws {
		ws[i] = Worker{
			ID:    i,
			Owner: LifeOwner{Life: l},
			BusySampler: func(r *rng.Source) float64 {
				return r.Uniform(5, 20)
			},
			PolicyFactory: func() Policy { return &FixedChunkPolicy{Chunk: 25} },
		}
	}
	pool, err := NewUniformTasks(400, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	return FarmConfig{Workers: ws, Overhead: 1, Seed: 11, MaxTime: 1e6, Obs: o}, pool
}

// TestRunFarmObsNeutral: instrumentation does not change farm results.
func TestRunFarmObsNeutral(t *testing.T) {
	cfgPlain, poolPlain := farmConfig(t, Obs{})
	plain, err := RunFarm(cfgPlain, poolPlain)
	if err != nil {
		t.Fatal(err)
	}
	var buf obs.BufferSink
	reg := obs.NewRegistry()
	cfgObs, poolObs := farmConfig(t, Obs{Sink: &buf, Metrics: reg})
	observed, err := RunFarm(cfgObs, poolObs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, observed) {
		t.Errorf("farm results differ:\nplain    %+v\nobserved %+v", plain, observed)
	}
	if len(buf.Events) == 0 {
		t.Fatal("farm emitted no events")
	}
	kinds := map[string]int{}
	for _, e := range buf.Events {
		kinds[e.Kind]++
	}
	for _, k := range []string{"episode-start", "dispatch", "commit"} {
		if kinds[k] == 0 {
			t.Errorf("no %q events in farm trace (kinds: %v)", k, kinds)
		}
	}
	// The uniform(60) owners reclaim often against chunk-25 periods, so
	// kills — and with 4 workers sharing a pool, steals — must occur.
	if kinds["kill"] == 0 {
		t.Errorf("no kill events (kinds: %v)", kinds)
	}
	if kinds["steal"] == 0 {
		t.Errorf("no steal events despite kills and a shared pool (kinds: %v)", kinds)
	}
	// Metrics must agree with the result's own accounting.
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"cs_committed_work", "cs_worker_committed_work{worker=\"0\"}",
		"cs_engine_events_fired", "cs_farm_makespan", "cs_steal_total",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if got := reg.Gauge("cs_committed_work", "").Value(); math.Abs(got-observed.CommittedWork) > 1e-9 {
		t.Errorf("cs_committed_work = %g, result says %g", got, observed.CommittedWork)
	}
	if got := reg.Counter("cs_episodes_total", "").Value(); got != uint64(observed.Episodes) {
		t.Errorf("cs_episodes_total = %d, result says %d", got, observed.Episodes)
	}
}

// TestFarmChromeTraceValid: the acceptance-criterion check — a farm run
// exported through the Chrome sink is valid trace_event JSON that
// Perfetto will load.
func TestFarmChromeTraceValid(t *testing.T) {
	var raw bytes.Buffer
	sink := obs.NewChromeSink(&raw)
	cfg, pool := farmConfig(t, Obs{Sink: sink})
	if _, err := RunFarm(cfg, pool); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	var tr struct {
		DisplayTimeUnit string                   `json:"displayTimeUnit"`
		TraceEvents     []map[string]interface{} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw.Bytes(), &tr); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if len(tr.TraceEvents) == 0 {
		t.Fatal("chrome trace has no events")
	}
	slices := 0
	for _, ev := range tr.TraceEvents {
		for _, key := range []string{"ph", "pid", "tid", "name"} {
			if _, ok := ev[key]; !ok {
				t.Fatalf("event missing %q: %v", key, ev)
			}
		}
		if ev["ph"] == "X" {
			slices++
			if _, ok := ev["ts"]; !ok {
				t.Fatalf("slice missing ts: %v", ev)
			}
			if _, ok := ev["dur"]; !ok {
				t.Fatalf("slice missing dur: %v", ev)
			}
		}
	}
	if slices == 0 {
		t.Error("no complete (ph=X) period slices in farm trace")
	}
}

// TestEventKindRoundTrip: every kind names itself and survives the
// trace encoder; unknown kinds fall back cleanly.
func TestEventKindRoundTrip(t *testing.T) {
	kinds := []EventKind{
		EventDispatch, EventCommit, EventKill,
		EventVoluntaryEnd, EventSteal, EventEpisodeStart,
	}
	wantNames := []string{
		"dispatch", "commit", "kill",
		"voluntary-end", "steal", "episode-start",
	}
	for i, k := range kinds {
		if k.String() != wantNames[i] {
			t.Errorf("kind %d String() = %q, want %q", int(k), k.String(), wantNames[i])
		}
		ev := EpisodeEvent{Time: 1.5, Kind: k, Period: i, Length: 2.25}
		te := ev.TraceEvent(3)
		if te.Kind != wantNames[i] || te.Worker != 3 || te.Time != 1.5 || te.Period != i || te.Length != 2.25 {
			t.Errorf("TraceEvent round-trip for %v = %+v", k, te)
		}
		// Both exporters must accept every kind without error.
		var jbuf, cbuf bytes.Buffer
		js, cs := obs.NewJSONLSink(&jbuf), obs.NewChromeSink(&cbuf)
		js.Emit(te)
		cs.Emit(te)
		if err := js.Close(); err != nil {
			t.Errorf("JSONL encode of %v: %v", k, err)
		}
		if err := cs.Close(); err != nil {
			t.Errorf("chrome encode of %v: %v", k, err)
		}
		if !json.Valid(cbuf.Bytes()) {
			t.Errorf("chrome encoding of %v is invalid JSON", k)
		}
		var line struct {
			Kind string `json:"kind"`
		}
		if err := json.Unmarshal(bytes.TrimSpace(jbuf.Bytes()), &line); err != nil || line.Kind != wantNames[i] {
			t.Errorf("JSONL round-trip of %v: kind %q, err %v", k, line.Kind, err)
		}
	}
	unknown := EventKind(99)
	if unknown.String() != "unknown" {
		t.Errorf("EventKind(99).String() = %q, want \"unknown\"", unknown.String())
	}
	te := EpisodeEvent{Kind: unknown}.TraceEvent(0)
	if te.Kind != "unknown" {
		t.Errorf("unknown kind trace event = %+v", te)
	}
}
