package nowsim

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/lifefn"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/sched"
)

func testLife(t testing.TB) lifefn.Life {
	t.Helper()
	l, err := lifefn.NewUniform(64)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// TestRunEpisodeObsMatchesRecorded: the obs event stream is exactly the
// recorded log, tagged with the worker index and framed by an "episode"
// span that every point event references as its parent.
func TestRunEpisodeObsMatchesRecorded(t *testing.T) {
	s := sched.MustNew(4, 3, 2)
	var buf obs.BufferSink
	res := RunEpisodeObs(NewSchedulePolicy(s, "obs"), 1, 8, 7, Obs{Sink: &buf})
	plain, log := RunEpisodeRecorded(NewSchedulePolicy(s, "rec"), 1, 8)
	if res != plain {
		t.Errorf("observed result %+v != recorded result %+v", res, plain)
	}
	if len(buf.Events) != len(log)+2 {
		t.Fatalf("sink got %d events, recorder %d (+2 span frames)", len(buf.Events), len(log))
	}
	first, last := buf.Events[0], buf.Events[len(buf.Events)-1]
	if first.Phase != obs.PhaseBegin || first.Kind != "episode" || first.Span == 0 || first.Worker != 7 {
		t.Errorf("first event is not the episode span begin: %+v", first)
	}
	//lint:allow floatcmp the span end copies Duration verbatim
	if last.Phase != obs.PhaseEnd || last.Span != first.Span || last.Time != res.Duration {
		t.Errorf("last event is not the matching span end at Duration: %+v", last)
	}
	for i := range log {
		want := log[i].TraceEvent(7)
		//lint:allow obssafe the test builds the expected attributed event by hand
		want.Parent = first.Span
		if buf.Events[i+1] != want {
			t.Errorf("event %d = %+v, want %+v", i, buf.Events[i+1], want)
		}
	}
}

// TestMonteCarloDeterminism: identical seeds produce identical results
// with the sink enabled vs. disabled, and byte-identical JSONL traces
// across repeated runs — the satellite regression the ISSUE demands.
func TestMonteCarloDeterminism(t *testing.T) {
	l := testLife(t)
	owner := LifeOwner{Life: l}
	pol := func() Policy { return &FixedChunkPolicy{Chunk: 7} }

	run := func(o Obs) MonteCarloResult { return MonteCarloObs(pol(), owner, 1, 500, 42, o) }
	plain := MonteCarlo(pol(), owner, 1, 500, 42)

	trace := func() ([]byte, MonteCarloResult) {
		var buf bytes.Buffer
		sink := obs.NewJSONLSink(&buf)
		res := run(Obs{Sink: sink, Metrics: obs.NewRegistry()})
		if err := sink.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes(), res
	}
	b1, r1 := trace()
	b2, r2 := trace()
	if !bytes.Equal(b1, b2) {
		t.Error("JSONL traces from identical seeds are not byte-identical")
	}
	if len(b1) == 0 {
		t.Fatal("trace is empty")
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Errorf("observed runs differ: %+v vs %+v", r1, r2)
	}
	if !reflect.DeepEqual(r1, plain) {
		t.Errorf("sink-enabled result %+v != sink-disabled result %+v", r1, plain)
	}
}

func TestMonteCarloAntitheticDeterminism(t *testing.T) {
	l := testLife(t)
	pol := func() Policy { return &FixedChunkPolicy{Chunk: 7} }
	plain := MonteCarloAntithetic(pol(), l, 1, 200, 99)

	trace := func() ([]byte, MonteCarloResult) {
		var buf bytes.Buffer
		sink := obs.NewJSONLSink(&buf)
		res := MonteCarloAntitheticObs(pol(), l, 1, 200, 99, Obs{Sink: sink})
		if err := sink.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes(), res
	}
	b1, r1 := trace()
	b2, r2 := trace()
	if !bytes.Equal(b1, b2) {
		t.Error("antithetic JSONL traces are not byte-identical")
	}
	if !reflect.DeepEqual(r1, r2) || !reflect.DeepEqual(r1, plain) {
		t.Errorf("antithetic observed %+v, repeat %+v, plain %+v", r1, r2, plain)
	}
}

// TestMonteCarloParallelObsDeterminism: the parallel harness replays
// block buffers in order, so trace and results are identical for any
// worker count and identical to the sequential run.
func TestMonteCarloParallelObsDeterminism(t *testing.T) {
	l := testLife(t)
	owner := LifeOwner{Life: l}
	factory := func() Policy { return &FixedChunkPolicy{Chunk: 7} }

	trace := func(workers int) ([]byte, MonteCarloResult) {
		var buf bytes.Buffer
		sink := obs.NewJSONLSink(&buf)
		res := MonteCarloParallelObs(factory, owner, 1, 3000, 5, workers, Obs{Sink: sink})
		if err := sink.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes(), res
	}
	b2, r2 := trace(2)
	b8, r8 := trace(8)
	if !bytes.Equal(b2, b8) {
		t.Error("parallel traces differ across worker counts")
	}
	if !reflect.DeepEqual(r2, r8) {
		t.Errorf("parallel results differ across worker counts: %+v vs %+v", r2, r8)
	}
	plain := MonteCarloParallel(factory, owner, 1, 3000, 5, 4)
	if !reflect.DeepEqual(r2, plain) {
		t.Errorf("observed parallel %+v != plain parallel %+v", r2, plain)
	}
}

func farmConfig(t testing.TB, o Obs) (FarmConfig, *TaskPool) {
	t.Helper()
	l, err := lifefn.NewUniform(60)
	if err != nil {
		t.Fatal(err)
	}
	ws := make([]Worker, 4)
	for i := range ws {
		ws[i] = Worker{
			ID:    i,
			Owner: LifeOwner{Life: l},
			BusySampler: func(r *rng.Source) float64 {
				return r.Uniform(5, 20)
			},
			PolicyFactory: func() Policy { return &FixedChunkPolicy{Chunk: 25} },
		}
	}
	pool, err := NewUniformTasks(400, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	return FarmConfig{Workers: ws, Overhead: 1, Seed: 11, MaxTime: 1e6, Obs: o}, pool
}

// TestRunFarmObsNeutral: instrumentation does not change farm results.
func TestRunFarmObsNeutral(t *testing.T) {
	cfgPlain, poolPlain := farmConfig(t, Obs{})
	plain, err := RunFarm(cfgPlain, poolPlain)
	if err != nil {
		t.Fatal(err)
	}
	var buf obs.BufferSink
	reg := obs.NewRegistry()
	cfgObs, poolObs := farmConfig(t, Obs{Sink: &buf, Metrics: reg})
	observed, err := RunFarm(cfgObs, poolObs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, observed) {
		t.Errorf("farm results differ:\nplain    %+v\nobserved %+v", plain, observed)
	}
	if len(buf.Events) == 0 {
		t.Fatal("farm emitted no events")
	}
	kinds := map[string]int{}
	for _, e := range buf.Events {
		kinds[e.Kind]++
	}
	for _, k := range []string{"episode-start", "dispatch", "commit"} {
		if kinds[k] == 0 {
			t.Errorf("no %q events in farm trace (kinds: %v)", k, kinds)
		}
	}
	// The uniform(60) owners reclaim often against chunk-25 periods, so
	// kills — and with 4 workers sharing a pool, steals — must occur.
	if kinds["kill"] == 0 {
		t.Errorf("no kill events (kinds: %v)", kinds)
	}
	if kinds["steal"] == 0 {
		t.Errorf("no steal events despite kills and a shared pool (kinds: %v)", kinds)
	}
	// Metrics must agree with the result's own accounting.
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"cs_committed_work", "cs_worker_committed_work{worker=\"0\"}",
		"cs_engine_events_fired", "cs_farm_makespan", "cs_steal_total",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if got := reg.Gauge("cs_committed_work", "").Value(); math.Abs(got-observed.CommittedWork) > 1e-9 {
		t.Errorf("cs_committed_work = %g, result says %g", got, observed.CommittedWork)
	}
	if got := reg.Counter("cs_episodes_total", "").Value(); got != uint64(observed.Episodes) {
		t.Errorf("cs_episodes_total = %d, result says %d", got, observed.Episodes)
	}
}

// TestFarmChromeTraceValid: the acceptance-criterion check — a farm run
// exported through the Chrome sink is valid trace_event JSON that
// Perfetto will load.
func TestFarmChromeTraceValid(t *testing.T) {
	var raw bytes.Buffer
	sink := obs.NewChromeSink(&raw)
	cfg, pool := farmConfig(t, Obs{Sink: sink})
	if _, err := RunFarm(cfg, pool); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	var tr struct {
		DisplayTimeUnit string                   `json:"displayTimeUnit"`
		TraceEvents     []map[string]interface{} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw.Bytes(), &tr); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if len(tr.TraceEvents) == 0 {
		t.Fatal("chrome trace has no events")
	}
	slices := 0
	for _, ev := range tr.TraceEvents {
		for _, key := range []string{"ph", "pid", "tid", "name"} {
			if _, ok := ev[key]; !ok {
				t.Fatalf("event missing %q: %v", key, ev)
			}
		}
		if ev["ph"] == "X" {
			slices++
			if _, ok := ev["ts"]; !ok {
				t.Fatalf("slice missing ts: %v", ev)
			}
			if _, ok := ev["dur"]; !ok {
				t.Fatalf("slice missing dur: %v", ev)
			}
		}
	}
	if slices == 0 {
		t.Error("no complete (ph=X) period slices in farm trace")
	}
}

// TestFarmChromeSpanNesting round-trips a multi-worker farm trace
// through the Chrome exporter and replays the viewer's own matching
// rules: a constant pid, every thread's stream time-ordered, and B/E
// span events forming a properly nested stack per thread (an E always
// closes the most recent open B, no orphans, nothing left open). This
// is exactly what breaks when interleaved workers are written in global
// emission order, so it pins the per-tid sort + repair pass at Close.
func TestFarmChromeSpanNesting(t *testing.T) {
	var raw bytes.Buffer
	sink := obs.NewChromeSink(&raw)
	cfg, pool := farmConfig(t, Obs{Sink: sink})
	if _, err := RunFarm(cfg, pool); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	var tr struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Pid  int     `json:"pid"`
			Tid  int     `json:"tid"`
			Ts   float64 `json:"ts"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw.Bytes(), &tr); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	lastTs := map[int]float64{}
	stacks := map[int][]string{}
	var begins, ends int
	for i, ev := range tr.TraceEvents {
		if ev.Ph == "M" {
			continue
		}
		if ev.Pid != 1 {
			t.Fatalf("event %d: pid = %d, want the stable pid 1", i, ev.Pid)
		}
		if prev, ok := lastTs[ev.Tid]; ok && ev.Ts < prev {
			t.Fatalf("event %d (tid %d): ts %g after %g — thread stream not time-ordered", i, ev.Tid, ev.Ts, prev)
		}
		lastTs[ev.Tid] = ev.Ts
		switch ev.Ph {
		case "B":
			begins++
			stacks[ev.Tid] = append(stacks[ev.Tid], ev.Name)
		case "E":
			ends++
			st := stacks[ev.Tid]
			if len(st) == 0 {
				t.Fatalf("event %d (tid %d): E %q with no open span", i, ev.Tid, ev.Name)
			}
			if top := st[len(st)-1]; ev.Name != "" && ev.Name != top {
				t.Fatalf("event %d (tid %d): E %q does not close innermost B %q", i, ev.Tid, ev.Name, top)
			}
			stacks[ev.Tid] = st[:len(st)-1]
		}
	}
	//lint:allow determinism order-independent assertion over test-local state
	for tid, st := range stacks {
		if len(st) != 0 {
			t.Errorf("tid %d: spans left open at end of trace: %v", tid, st)
		}
	}
	if begins == 0 || begins != ends {
		t.Errorf("span framing: %d begins, %d ends — farm should emit balanced worker/episode spans", begins, ends)
	}
	// The farm instrumentation opens a worker span per workstation and an
	// episode span per episode; both kinds must survive the round trip.
	kinds := map[string]bool{}
	for _, ev := range tr.TraceEvents {
		if ev.Ph == "B" {
			kinds[ev.Name] = true
		}
	}
	for _, want := range []string{"worker", "episode"} {
		if !kinds[want] {
			t.Errorf("no %q B span in farm trace (kinds: %v)", want, kinds)
		}
	}
}

// TestEventKindRoundTrip: every kind names itself and survives the
// trace encoder; unknown kinds fall back cleanly.
func TestEventKindRoundTrip(t *testing.T) {
	kinds := []EventKind{
		EventDispatch, EventCommit, EventKill,
		EventVoluntaryEnd, EventSteal, EventEpisodeStart,
	}
	wantNames := []string{
		"dispatch", "commit", "kill",
		"voluntary-end", "steal", "episode-start",
	}
	for i, k := range kinds {
		if k.String() != wantNames[i] {
			t.Errorf("kind %d String() = %q, want %q", int(k), k.String(), wantNames[i])
		}
		ev := EpisodeEvent{Time: 1.5, Kind: k, Period: i, Length: 2.25}
		te := ev.TraceEvent(3)
		if te.Kind != wantNames[i] || te.Worker != 3 || te.Time != 1.5 || te.Period != i || te.Length != 2.25 {
			t.Errorf("TraceEvent round-trip for %v = %+v", k, te)
		}
		// Both exporters must accept every kind without error.
		var jbuf, cbuf bytes.Buffer
		js, cs := obs.NewJSONLSink(&jbuf), obs.NewChromeSink(&cbuf)
		js.Emit(te)
		cs.Emit(te)
		if err := js.Close(); err != nil {
			t.Errorf("JSONL encode of %v: %v", k, err)
		}
		if err := cs.Close(); err != nil {
			t.Errorf("chrome encode of %v: %v", k, err)
		}
		if !json.Valid(cbuf.Bytes()) {
			t.Errorf("chrome encoding of %v is invalid JSON", k)
		}
		var line struct {
			Kind string `json:"kind"`
		}
		if err := json.Unmarshal(bytes.TrimSpace(jbuf.Bytes()), &line); err != nil || line.Kind != wantNames[i] {
			t.Errorf("JSONL round-trip of %v: kind %q, err %v", k, line.Kind, err)
		}
	}
	unknown := EventKind(99)
	if unknown.String() != "unknown" {
		t.Errorf("EventKind(99).String() = %q, want \"unknown\"", unknown.String())
	}
	te := EpisodeEvent{Kind: unknown}.TraceEvent(0)
	if te.Kind != "unknown" {
		t.Errorf("unknown kind trace event = %+v", te)
	}
}
