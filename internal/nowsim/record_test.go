package nowsim

import (
	"strings"
	"testing"

	"repro/internal/sched"
)

func TestRunEpisodeRecordedEventSequence(t *testing.T) {
	s := sched.MustNew(4, 3, 2)
	pol := NewSchedulePolicy(s, "rec")
	res, log := RunEpisodeRecorded(pol, 1, 8)
	// Expected: dispatch(0)@0, commit(0)@4, dispatch(1)@4, commit(1)@7,
	// dispatch(2)@7, kill(2)@8.
	wantKinds := []EventKind{EventDispatch, EventCommit, EventDispatch, EventCommit, EventDispatch, EventKill}
	if len(log) != len(wantKinds) {
		t.Fatalf("log has %d events: %v", len(log), log)
	}
	for i, k := range wantKinds {
		if log[i].Kind != k {
			t.Errorf("event %d = %v, want %v", i, log[i], k)
		}
	}
	if log[5].Time != 8 || log[5].Period != 2 {
		t.Errorf("kill event = %v", log[5])
	}
	// Result must agree with the unrecorded runner.
	plain := RunEpisode(NewSchedulePolicy(s, "plain"), 1, 8)
	//lint:allow floatcmp recording must not perturb the run: bit-identical
	if res.Work != plain.Work || res.Lost != plain.Lost || res.PeriodsCommitted != plain.PeriodsCommitted {
		t.Errorf("recorded result %+v differs from plain %+v", res, plain)
	}
}

func TestRunEpisodeRecordedVoluntaryEnd(t *testing.T) {
	s := sched.MustNew(2)
	_, log := RunEpisodeRecorded(NewSchedulePolicy(s, "rec"), 1, 100)
	last := log[len(log)-1]
	if last.Kind != EventVoluntaryEnd || last.Period != -1 {
		t.Errorf("last event = %v, want voluntary end", last)
	}
}

func TestEventStrings(t *testing.T) {
	//lint:allow determinism iteration order does not affect assertions
	for k, want := range map[EventKind]string{
		EventDispatch: "dispatch", EventCommit: "commit",
		EventKill: "kill", EventVoluntaryEnd: "voluntary-end",
		EventKind(42): "unknown",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
	ev := EpisodeEvent{Time: 1.5, Kind: EventCommit, Period: 3, Length: 4}
	if !strings.Contains(ev.String(), "commit") || !strings.Contains(ev.String(), "period=3") {
		t.Errorf("event string = %q", ev.String())
	}
}
