package nowsim

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/lifefn"
	"repro/internal/sched"
)

func TestRunEpisodeDeterministicAccounting(t *testing.T) {
	// Schedule (4, 3, 2), c=1, reclaim at 8: periods end at 4, 7, 9.
	// First two commit (3 + 2 work), third is killed (1 lost).
	s := sched.MustNew(4, 3, 2)
	res := RunEpisode(NewSchedulePolicy(s, ""), 1, 8)
	if res.Work != 5 {
		t.Errorf("work = %g, want 5", res.Work)
	}
	if res.Lost != 1 {
		t.Errorf("lost = %g, want 1", res.Lost)
	}
	if res.PeriodsCommitted != 2 || res.PeriodsDispatched != 3 {
		t.Errorf("periods = %d/%d", res.PeriodsCommitted, res.PeriodsDispatched)
	}
	if !res.Reclaimed || res.Duration != 8 {
		t.Errorf("reclaimed=%v duration=%g", res.Reclaimed, res.Duration)
	}
	if res.Overhead != 2 {
		t.Errorf("overhead = %g, want 2", res.Overhead)
	}
}

func TestRunEpisodeReclaimExactlyAtBoundaryLosesPeriod(t *testing.T) {
	// "If B is reclaimed by time T_k, the episode ends" — equality
	// loses the period.
	s := sched.MustNew(4)
	res := RunEpisode(NewSchedulePolicy(s, ""), 1, 4)
	if res.Work != 0 || res.Lost != 3 {
		t.Errorf("work=%g lost=%g, want 0/3", res.Work, res.Lost)
	}
}

func TestRunEpisodeVoluntaryEnd(t *testing.T) {
	s := sched.MustNew(2, 2)
	res := RunEpisode(NewSchedulePolicy(s, ""), 1, 100)
	if res.Reclaimed {
		t.Error("episode marked reclaimed after voluntary end")
	}
	if res.Work != 2 || res.Duration != 4 {
		t.Errorf("work=%g duration=%g", res.Work, res.Duration)
	}
}

func TestRunEpisodeInstantReclaim(t *testing.T) {
	s := sched.MustNew(5)
	res := RunEpisode(NewSchedulePolicy(s, ""), 1, 0)
	if res.Work != 0 {
		t.Errorf("work = %g", res.Work)
	}
	if !res.Reclaimed {
		t.Error("not marked reclaimed")
	}
}

func TestRunEpisodeMatchesRealizedWork(t *testing.T) {
	// The DES must agree with the analytic step function for arbitrary
	// reclaim times.
	s := sched.MustNew(7, 5.5, 4, 2.5)
	c := 1.5
	pol := NewSchedulePolicy(s, "")
	for _, r := range []float64{0, 1, 6.9, 7, 7.1, 12.4, 12.5, 12.6, 16.4, 16.55, 19, 100} {
		des := RunEpisode(pol, c, r)
		want := sched.RealizedWork(s, c, r)
		if math.Abs(des.Work-want) > 1e-12 {
			t.Errorf("reclaim %g: DES work %g, analytic %g", r, des.Work, want)
		}
	}
}

func TestMonteCarloMatchesExpectedWorkUniform(t *testing.T) {
	// E6 in miniature: the Monte-Carlo mean must converge to E(S; p).
	l, _ := lifefn.NewUniform(100)
	s := sched.MustNew(20, 19, 18, 17)
	analytic, mc, z := ValidateExpectedWork(s, l, 1, 60_000, 12345)
	if z > 4.5 {
		t.Errorf("MC mean %g vs analytic %g: z = %g", mc.Mean, analytic, z)
	}
}

func TestMonteCarloMatchesExpectedWorkGeomDecreasing(t *testing.T) {
	a := math.Pow(2, 1.0/16)
	l, _ := lifefn.NewGeomDecreasing(a)
	s := sched.MustNew(8, 8, 8, 8, 8, 8, 8, 8, 8, 8, 8, 8)
	analytic, mc, z := ValidateExpectedWork(s, l, 1, 60_000, 999)
	if z > 4.5 {
		t.Errorf("MC mean %g vs analytic %g: z = %g", mc.Mean, analytic, z)
	}
}

func TestMonteCarloDeterministicAcrossRuns(t *testing.T) {
	l, _ := lifefn.NewUniform(50)
	s := sched.MustNew(10, 9)
	a := MonteCarlo(NewSchedulePolicy(s, ""), LifeOwner{Life: l}, 1, 1000, 7)
	b := MonteCarlo(NewSchedulePolicy(s, ""), LifeOwner{Life: l}, 1, 1000, 7)
	//lint:allow floatcmp same-seed determinism: bit-identical
	if a.Work.Mean != b.Work.Mean || a.Reclaimed != b.Reclaimed {
		t.Error("same seed produced different results")
	}
	c := MonteCarlo(NewSchedulePolicy(s, ""), LifeOwner{Life: l}, 1, 1000, 8)
	//lint:allow floatcmp different seeds must not collide bit-for-bit
	if a.Work.Mean == c.Work.Mean {
		t.Error("different seeds produced identical results")
	}
}

func TestProgressivePolicyInEpisode(t *testing.T) {
	l, _ := lifefn.NewUniform(200)
	pol, err := NewProgressivePolicy(l, 1, core.PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res := RunEpisode(pol, 1, 150)
	if !(res.Work > 0) {
		t.Errorf("progressive policy committed no work: %+v", res)
	}
	// Reusable across episodes.
	res2 := RunEpisode(pol, 1, 150)
	if math.Abs(res.Work-res2.Work) > 1e-9 {
		t.Errorf("progressive policy not reset between episodes: %g vs %g", res.Work, res2.Work)
	}
}

func TestFixedChunkPolicy(t *testing.T) {
	pol := &FixedChunkPolicy{Chunk: 5}
	res := RunEpisode(pol, 1, 17)
	// Periods end at 5, 10, 15; the one in flight at 17 dies.
	if res.Work != 12 {
		t.Errorf("work = %g, want 12", res.Work)
	}
	bad := &FixedChunkPolicy{}
	if r := RunEpisode(bad, 1, 17); r.Work != 0 {
		t.Errorf("zero chunk committed work %g", r.Work)
	}
}

func TestSchedulePolicyString(t *testing.T) {
	if NewSchedulePolicy(sched.MustNew(1), "x").String() != "x" {
		t.Error("named policy string")
	}
	if NewSchedulePolicy(sched.MustNew(1), "").String() != "schedule" {
		t.Error("default policy string")
	}
	if (&FixedChunkPolicy{Chunk: 2}).String() == "" {
		t.Error("fixed chunk string empty")
	}
}
