package nowsim

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/lifefn"
)

func specLife(t *testing.T) lifefn.Life {
	t.Helper()
	l, err := lifefn.NewUniform(200)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestParsePolicySpecs(t *testing.T) {
	l := specLife(t)
	cases := []struct {
		spec     string
		wantPlan bool
	}{
		{"guideline", true},
		{"progressive", false},
		{"fixed:25", false},
		{" fixed:25 ", false}, // whitespace-tolerant
		{"allatonce", false},
	}
	for _, tc := range cases {
		ps, err := ParsePolicy(tc.spec, l, 1, core.PlanOptions{})
		if err != nil {
			t.Errorf("ParsePolicy(%q): %v", tc.spec, err)
			continue
		}
		if ps.Name != strings.TrimSpace(tc.spec) {
			t.Errorf("ParsePolicy(%q).Name = %q", tc.spec, ps.Name)
		}
		if (ps.Plan != nil) != tc.wantPlan {
			t.Errorf("ParsePolicy(%q).Plan != nil is %v, want %v", tc.spec, ps.Plan != nil, tc.wantPlan)
		}
		if ps.Factory == nil {
			t.Errorf("ParsePolicy(%q).Factory is nil", tc.spec)
			continue
		}
		// Factories must yield fresh instances: per-worker policies carry
		// per-episode cursor state.
		if ps.Factory() == ps.Factory() {
			t.Errorf("ParsePolicy(%q).Factory returns a shared instance", tc.spec)
		}
	}
}

func TestParsePolicyErrors(t *testing.T) {
	l := specLife(t)
	for _, spec := range []string{"", "unknown", "fixed:", "fixed:0", "fixed:-3", "fixed:abc"} {
		if _, err := ParsePolicy(spec, l, 1, core.PlanOptions{}); err == nil {
			t.Errorf("ParsePolicy(%q) succeeded, want error", spec)
		}
	}
}

// TestParsePolicyGuidelineMatchesPlanner pins that the shared parser
// produces the same guideline schedule as calling the planner directly,
// so CLIs switching to ParsePolicy see no behavior change.
func TestParsePolicyGuidelineMatchesPlanner(t *testing.T) {
	l := specLife(t)
	ps, err := ParsePolicy("guideline", l, 1, core.PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pl, err := core.NewPlanner(l, 1, core.PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := pl.PlanBest()
	if err != nil {
		t.Fatal(err)
	}
	//lint:allow floatcmp shared parser must produce the identical plan
	if ps.Plan.T0 != want.T0 || ps.Plan.ExpectedWork != want.ExpectedWork {
		t.Errorf("shared parser plan (t0=%g, E=%g) differs from direct plan (t0=%g, E=%g)",
			ps.Plan.T0, ps.Plan.ExpectedWork, want.T0, want.ExpectedWork)
	}
}

func TestParseDist(t *testing.T) {
	//lint:allow determinism iteration order does not affect assertions
	for name, want := range map[string]DurationDist{
		"uniform":   DistUniform,
		"lognormal": DistLogNormal,
		"bimodal":   DistBimodal,
		"pareto":    DistParetoCapped,
	} {
		got, err := ParseDist(name)
		if err != nil || got != want {
			t.Errorf("ParseDist(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := ParseDist("cauchy"); err == nil {
		t.Error("ParseDist(cauchy) succeeded, want error")
	}
}

func TestBuildLife(t *testing.T) {
	for _, name := range []string{"uniform", "poly", "geomdec", "geominc"} {
		l, err := BuildLife(name, 100, 32, 2)
		if err != nil || l == nil {
			t.Errorf("BuildLife(%q): %v", name, err)
		}
	}
	if _, err := BuildLife("weibull", 100, 32, 2); err == nil {
		t.Error("BuildLife(weibull) succeeded, want error")
	}
	if _, err := BuildLife("geomdec", 100, 0, 2); err == nil {
		t.Error("BuildLife(geomdec, halfLife=0) succeeded, want error")
	}
}
