package nowsim

import (
	"strconv"

	"repro/internal/obs"
	"repro/internal/sched"
)

// Obs bundles the optional observability outputs threaded through the
// simulators: a structured trace sink and a metrics registry. Both
// fields are nil-safe and independent; the zero Obs disables all
// instrumentation at (benchmarked, see obs_bench_test.go) zero cost.
//
// Instrumentation never changes simulation results: observed and
// unobserved runs with the same seed are identical, a property the
// determinism regression tests assert.
type Obs struct {
	// Sink receives dispatch/commit/kill/steal/... events as they
	// happen. nil disables tracing.
	Sink obs.Sink
	// Metrics, when non-nil, accumulates the standard cs_* counter,
	// gauge and histogram set (see newSimMetrics).
	Metrics *obs.Registry
}

func (o Obs) enabled() bool { return o.Sink != nil || o.Metrics != nil }

// TraceEvent converts an episode event to the generic obs schema,
// tagging it with the emitting worker.
func (e EpisodeEvent) TraceEvent(worker int) obs.Event {
	return obs.Event{
		Time:   e.Time,
		Worker: worker,
		Kind:   e.Kind.String(),
		Period: e.Period,
		Length: e.Length,
	}
}

// periodLenBuckets are the histogram bounds for dispatched period
// lengths: exponential from 1 to ~4000 time units.
var periodLenBuckets = obs.ExpBuckets(1, 2, 12)

// simMetrics is the standard instrument set every simulator updates
// when a registry is supplied. All methods are nil-receiver-safe.
type simMetrics struct {
	c          float64
	dispatches *obs.Counter
	commits    *obs.Counter
	kills      *obs.Counter
	voluntary  *obs.Counter
	steals     *obs.Counter
	episodes   *obs.Counter
	committed  *obs.Gauge
	lost       *obs.Gauge
	overhead   *obs.Gauge
	periodLen  *obs.Histogram
}

// newSimMetrics registers (or re-binds) the standard metric set on reg.
// A nil registry yields a nil *simMetrics, whose methods no-op.
func newSimMetrics(reg *obs.Registry, c float64) *simMetrics {
	if reg == nil {
		return nil
	}
	return &simMetrics{
		c:          c,
		dispatches: reg.Counter("cs_dispatch_total", "periods dispatched to borrowed workstations"),
		commits:    reg.Counter("cs_commit_total", "periods that completed before the owner returned"),
		kills:      reg.Counter("cs_kill_total", "periods destroyed by the owner's return"),
		voluntary:  reg.Counter("cs_voluntary_end_total", "episodes ended by the policy declining further work"),
		steals:     reg.Counter("cs_steal_total", "bundles containing tasks another worker lost"),
		episodes:   reg.Counter("cs_episodes_total", "cycle-stealing episodes run"),
		committed:  reg.Gauge("cs_committed_work", "total committed work"),
		lost:       reg.Gauge("cs_lost_work", "total work destroyed by reclamations"),
		overhead:   reg.Gauge("cs_overhead_time", "total communication overhead spent"),
		periodLen:  reg.Histogram("cs_period_length", "dispatched period lengths", periodLenBuckets),
	}
}

// observe updates the metric set from one episode event, using the
// configured per-period overhead c for work accounting (mirroring the
// simulator: a period of length t commits or loses max(t-c, 0)).
func (m *simMetrics) observe(e EpisodeEvent) {
	if m == nil {
		return
	}
	switch e.Kind {
	case EventDispatch:
		m.dispatches.Inc()
		m.periodLen.Observe(e.Length)
	case EventCommit:
		m.commits.Inc()
		m.committed.Add(sched.PositiveSub(e.Length, m.c))
		if e.Length > m.c {
			m.overhead.Add(m.c)
		} else {
			m.overhead.Add(e.Length)
		}
	case EventKill:
		m.kills.Inc()
		m.lost.Add(sched.PositiveSub(e.Length, m.c))
	case EventVoluntaryEnd:
		m.voluntary.Inc()
	case EventSteal:
		m.steals.Inc()
	case EventEpisodeStart:
		m.episodes.Inc()
	}
}

func (m *simMetrics) episodeDone() {
	if m == nil {
		return
	}
	m.episodes.Inc()
}

// episodeEmit builds the emit hook RunEpisodeObs and the Monte-Carlo
// variants share: forward to the sink (tagged with worker) and update
// the metrics.
func (o Obs) episodeEmit(worker int, m *simMetrics) func(EpisodeEvent) {
	if o.Sink == nil && m == nil {
		return nil
	}
	return func(e EpisodeEvent) {
		if o.Sink != nil {
			//lint:allow obssafe this is the nil-safe wrapper itself
			o.Sink.Emit(e.TraceEvent(worker))
		}
		m.observe(e)
	}
}

// RunEpisodeObs is RunEpisode with observability: events stream to
// o.Sink tagged with the given worker index, and o.Metrics accumulates
// the standard metric set. A zero Obs makes it exactly RunEpisode.
func RunEpisodeObs(policy Policy, c, reclaim float64, worker int, o Obs) EpisodeResult {
	if !o.enabled() {
		return RunEpisode(policy, c, reclaim)
	}
	m := newSimMetrics(o.Metrics, c)
	res := runEpisodeEmit(policy, c, reclaim, o.episodeEmit(worker, m))
	m.episodeDone()
	return res
}

// WorkerLabel renders the standard worker label for per-worker series,
// e.g. Labeled("cs_worker_committed_work", "worker", WorkerLabel(3)).
func WorkerLabel(id int) string { return strconv.Itoa(id) }

// workerMetrics is the per-worker instrument set the farm maintains.
type workerMetrics struct {
	committed *obs.Gauge
	lost      *obs.Gauge
	overhead  *obs.Gauge
	episodes  *obs.Counter
	tasksDone *obs.Counter
	tasksLost *obs.Counter
}

func newWorkerMetrics(reg *obs.Registry, id int) workerMetrics {
	w := obs.Labeled
	l := WorkerLabel(id)
	return workerMetrics{
		committed: reg.Gauge(w("cs_worker_committed_work", "worker", l), "per-worker committed work"),
		lost:      reg.Gauge(w("cs_worker_lost_work", "worker", l), "per-worker lost work"),
		overhead:  reg.Gauge(w("cs_worker_overhead_time", "worker", l), "per-worker communication overhead"),
		episodes:  reg.Counter(w("cs_worker_episodes_total", "worker", l), "per-worker episodes"),
		tasksDone: reg.Counter(w("cs_worker_tasks_completed_total", "worker", l), "per-worker tasks committed"),
		tasksLost: reg.Counter(w("cs_worker_tasks_lost_total", "worker", l), "per-worker task executions destroyed"),
	}
}

// farmObs carries RunFarm's instrumentation state. A nil *farmObs (the
// uninstrumented case) makes every method a no-op behind one branch, so
// the hot dispatch/commit/kill paths pay nothing when disabled.
type farmObs struct {
	sink      obs.Sink
	reg       *obs.Registry
	m         *simMetrics
	perWorker []workerMetrics
	// lostBy maps task ID -> ID of the worker whose period lost it, for
	// steal attribution: a later dispatch containing such tasks by a
	// different worker is a steal.
	lostBy map[int]int
	// periodSeq numbers each worker's dispatches so trace exporters can
	// pair a dispatch with its commit or kill.
	periodSeq []int
}

func newFarmObs(o Obs, c float64, workers []Worker) *farmObs {
	if !o.enabled() {
		return nil
	}
	f := &farmObs{
		sink:      o.Sink,
		reg:       o.Metrics,
		m:         newSimMetrics(o.Metrics, c),
		lostBy:    make(map[int]int),
		periodSeq: make([]int, len(workers)),
	}
	if o.Metrics != nil {
		f.perWorker = make([]workerMetrics, len(workers))
		for i := range workers {
			f.perWorker[i] = newWorkerMetrics(o.Metrics, workers[i].ID)
		}
	}
	return f
}

func (f *farmObs) emit(e obs.Event) {
	if f.sink != nil {
		f.sink.Emit(e)
	}
}

func (f *farmObs) episodeStart(w *farmWorker, now float64) {
	if f == nil {
		return
	}
	f.emit(obs.Event{Time: now, Worker: w.stats.ID, Kind: EventEpisodeStart.String()})
	if f.m != nil {
		f.m.episodes.Inc()
		f.perWorker[w.idx].episodes.Inc()
	}
}

// dispatch records a period dispatch and returns its per-worker
// sequence number (the trace's period index). Tasks previously lost by
// another worker count as stolen and emit an EventSteal marker.
func (f *farmObs) dispatch(w *farmWorker, now, length float64, bundle []Task) int {
	if f == nil {
		return 0
	}
	period := f.periodSeq[w.idx]
	f.periodSeq[w.idx]++
	stolen := 0
	for _, task := range bundle {
		if loser, ok := f.lostBy[task.ID]; ok {
			delete(f.lostBy, task.ID)
			if loser != w.stats.ID {
				stolen++
			}
		}
	}
	f.emit(obs.Event{Time: now, Worker: w.stats.ID, Kind: EventDispatch.String(),
		Period: period, Length: length, Tasks: len(bundle)})
	if stolen > 0 {
		f.emit(obs.Event{Time: now, Worker: w.stats.ID, Kind: EventSteal.String(),
			Period: period, Tasks: stolen})
	}
	if f.m != nil {
		f.m.dispatches.Inc()
		f.m.periodLen.Observe(length)
		if stolen > 0 {
			f.m.steals.Inc()
		}
	}
	return period
}

func (f *farmObs) commit(w *farmWorker, period int, now, length, used float64, bundle []Task) {
	if f == nil {
		return
	}
	f.emit(obs.Event{Time: now, Worker: w.stats.ID, Kind: EventCommit.String(),
		Period: period, Length: length, Tasks: len(bundle)})
	if f.m != nil {
		f.m.commits.Inc()
		f.m.committed.Add(used)
		f.m.overhead.Add(f.m.c)
		pw := &f.perWorker[w.idx]
		pw.committed.Add(used)
		pw.overhead.Add(f.m.c)
		pw.tasksDone.Add(uint64(len(bundle)))
	}
}

func (f *farmObs) kill(w *farmWorker, period int, now, length, used float64, bundle []Task) {
	if f == nil {
		return
	}
	for _, task := range bundle {
		f.lostBy[task.ID] = w.stats.ID
	}
	f.emit(obs.Event{Time: now, Worker: w.stats.ID, Kind: EventKill.String(),
		Period: period, Length: length, Tasks: len(bundle)})
	if f.m != nil {
		f.m.kills.Inc()
		f.m.lost.Add(used)
		pw := &f.perWorker[w.idx]
		pw.lost.Add(used)
		pw.tasksLost.Add(uint64(len(bundle)))
	}
}

func (f *farmObs) voluntaryEnd(w *farmWorker, now float64) {
	if f == nil {
		return
	}
	f.emit(obs.Event{Time: now, Worker: w.stats.ID, Kind: EventVoluntaryEnd.String(), Period: -1})
	if f.m != nil {
		f.m.voluntary.Inc()
	}
}

// finish publishes the end-of-run engine and farm gauges.
func (f *farmObs) finish(eng *Engine, res *FarmResult) {
	if f == nil || f.reg == nil {
		return
	}
	f.reg.Gauge("cs_engine_events_fired", "discrete events the engine executed").Set(float64(eng.Fired()))
	f.reg.Gauge("cs_farm_makespan", "farm run makespan").Set(res.Makespan)
	f.reg.Gauge("cs_farm_efficiency", "committed work over total borrowed time").Set(res.Efficiency())
	drained := 0.0
	if res.Drained {
		drained = 1
	}
	f.reg.Gauge("cs_farm_drained", "1 when every task committed before MaxTime").Set(drained)
}
