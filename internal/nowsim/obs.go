package nowsim

import (
	"strconv"

	"repro/internal/obs"
	"repro/internal/sched"
)

// Obs bundles the optional observability outputs threaded through the
// simulators: a structured trace sink and a metrics registry. Both
// fields are nil-safe and independent; the zero Obs disables all
// instrumentation at (benchmarked, see obs_bench_test.go) zero cost.
//
// Instrumentation never changes simulation results: observed and
// unobserved runs with the same seed are identical, a property the
// determinism regression tests assert.
type Obs struct {
	// Sink receives dispatch/commit/kill/steal/... events as they
	// happen. nil disables tracing.
	Sink obs.Sink
	// Metrics, when non-nil, accumulates the standard cs_* counter,
	// gauge and histogram set (see newSimMetrics).
	Metrics *obs.Registry
}

func (o Obs) enabled() bool { return o.Sink != nil || o.Metrics != nil }

// TraceEvent converts an episode event to the generic obs schema,
// tagging it with the emitting worker.
func (e EpisodeEvent) TraceEvent(worker int) obs.Event {
	return obs.Event{
		Time:   e.Time,
		Worker: worker,
		Kind:   e.Kind.String(),
		Period: e.Period,
		Length: e.Length,
	}
}

// periodLenBuckets are the histogram bounds for dispatched period
// lengths: exponential from 1 to ~4000 time units.
var periodLenBuckets = obs.ExpBuckets(1, 2, 12)

// simMetrics is the standard instrument set every simulator updates
// when a registry is supplied. All methods are nil-receiver-safe.
type simMetrics struct {
	c          float64
	dispatches *obs.Counter
	commits    *obs.Counter
	kills      *obs.Counter
	voluntary  *obs.Counter
	steals     *obs.Counter
	episodes   *obs.Counter
	committed  *obs.Gauge
	lost       *obs.Gauge
	overhead   *obs.Gauge
	periodLen  *obs.Histogram
	periodLenQ *obs.QuantileHist
	epWorkQ    *obs.QuantileHist
	// epWork accumulates committed work within the current episode; the
	// kill or voluntary-end that closes every episode flushes it into
	// epWorkQ, so the quantile summary works on merged replays that
	// carry no episode-start markers.
	epWork float64
}

// newSimMetrics registers (or re-binds) the standard metric set on reg.
// A nil registry yields a nil *simMetrics, whose methods no-op.
func newSimMetrics(reg *obs.Registry, c float64) *simMetrics {
	if reg == nil {
		return nil
	}
	return &simMetrics{
		c:          c,
		dispatches: reg.Counter("cs_dispatch_total", "periods dispatched to borrowed workstations"),
		commits:    reg.Counter("cs_commit_total", "periods that completed before the owner returned"),
		kills:      reg.Counter("cs_kill_total", "periods destroyed by the owner's return"),
		voluntary:  reg.Counter("cs_voluntary_end_total", "episodes ended by the policy declining further work"),
		steals:     reg.Counter("cs_steal_total", "bundles containing tasks another worker lost"),
		episodes:   reg.Counter("cs_episodes_total", "cycle-stealing episodes run"),
		committed:  reg.Gauge("cs_committed_work", "total committed work"),
		lost:       reg.Gauge("cs_lost_work", "total work destroyed by reclamations"),
		overhead:   reg.Gauge("cs_overhead_time", "total communication overhead spent"),
		periodLen:  reg.Histogram("cs_period_length", "dispatched period lengths", periodLenBuckets),
		periodLenQ: reg.Quantiles("cs_period_length_quantiles", "dispatched period lengths (log-bucketed quantile summary)"),
		epWorkQ:    reg.Quantiles("cs_episode_committed_work", "committed work per episode"),
	}
}

// observe updates the metric set from one episode event, using the
// configured per-period overhead c for work accounting (mirroring the
// simulator: a period of length t commits or loses max(t-c, 0)).
func (m *simMetrics) observe(e EpisodeEvent) {
	if m == nil {
		return
	}
	switch e.Kind {
	case EventDispatch:
		m.dispatches.Inc()
		m.periodLen.Observe(e.Length)
		m.periodLenQ.Observe(e.Length)
	case EventCommit:
		m.commits.Inc()
		used := sched.PositiveSub(e.Length, m.c)
		m.committed.Add(used)
		m.epWork += used
		if e.Length > m.c {
			m.overhead.Add(m.c)
		} else {
			m.overhead.Add(e.Length)
		}
	case EventKill:
		m.kills.Inc()
		m.lost.Add(sched.PositiveSub(e.Length, m.c))
		m.epWorkQ.Observe(m.epWork)
		m.epWork = 0
	case EventVoluntaryEnd:
		m.voluntary.Inc()
		m.epWorkQ.Observe(m.epWork)
		m.epWork = 0
	case EventSteal:
		m.steals.Inc()
	case EventEpisodeStart:
		m.episodes.Inc()
	}
}

func (m *simMetrics) episodeDone() {
	if m == nil {
		return
	}
	m.episodes.Inc()
}

// episodeEmit builds the emit hook RunEpisodeObs and the Monte-Carlo
// variants share: forward to the sink (tagged with worker) and update
// the metrics.
func (o Obs) episodeEmit(worker int, m *simMetrics) func(EpisodeEvent) {
	return o.episodeEmitIn(worker, m, obs.Span{})
}

// episodeEmitIn is episodeEmit with the events attributed to an
// enclosing span (an inactive span leaves them unattributed).
func (o Obs) episodeEmitIn(worker int, m *simMetrics, span obs.Span) func(EpisodeEvent) {
	if o.Sink == nil && m == nil {
		return nil
	}
	return func(e EpisodeEvent) {
		if o.Sink != nil {
			//lint:allow obssafe this is the nil-safe wrapper itself
			o.Sink.Emit(span.Attach(e.TraceEvent(worker)))
		}
		m.observe(e)
	}
}

// RunEpisodeObs is RunEpisode with observability: events stream to
// o.Sink tagged with the given worker index and framed by an "episode"
// span, and o.Metrics accumulates the standard metric set. A zero Obs
// makes it exactly RunEpisode.
func RunEpisodeObs(policy Policy, c, reclaim float64, worker int, o Obs) EpisodeResult {
	if !o.enabled() {
		return RunEpisode(policy, c, reclaim)
	}
	m := newSimMetrics(o.Metrics, c)
	span := obs.NewSpanner(o.Sink).Start(0, worker, "episode", obs.SpanAttrs{})
	res := runEpisodeEmit(policy, c, reclaim, o.episodeEmitIn(worker, m, span))
	span.End(res.Duration)
	m.episodeDone()
	return res
}

// WorkerLabel renders the standard worker label for per-worker series,
// e.g. Labeled("cs_worker_committed_work", "worker", WorkerLabel(3)).
func WorkerLabel(id int) string { return strconv.Itoa(id) }

// workerMetrics is the per-worker instrument set the farm maintains.
type workerMetrics struct {
	committed *obs.Gauge
	lost      *obs.Gauge
	overhead  *obs.Gauge
	episodes  *obs.Counter
	tasksDone *obs.Counter
	tasksLost *obs.Counter
}

func newWorkerMetrics(reg *obs.Registry, id int) workerMetrics {
	w := obs.Labeled
	l := WorkerLabel(id)
	return workerMetrics{
		committed: reg.Gauge(w("cs_worker_committed_work", "worker", l), "per-worker committed work"),
		lost:      reg.Gauge(w("cs_worker_lost_work", "worker", l), "per-worker lost work"),
		overhead:  reg.Gauge(w("cs_worker_overhead_time", "worker", l), "per-worker communication overhead"),
		episodes:  reg.Counter(w("cs_worker_episodes_total", "worker", l), "per-worker episodes"),
		tasksDone: reg.Counter(w("cs_worker_tasks_completed_total", "worker", l), "per-worker tasks committed"),
		tasksLost: reg.Counter(w("cs_worker_tasks_lost_total", "worker", l), "per-worker task executions destroyed"),
	}
}

// farmObs carries RunFarm's instrumentation state. A nil *farmObs (the
// uninstrumented case) makes every method a no-op behind one branch, so
// the hot dispatch/commit/kill paths pay nothing when disabled.
type farmObs struct {
	sink      obs.Sink
	reg       *obs.Registry
	m         *simMetrics
	perWorker []workerMetrics
	// lostBy maps task ID -> ID of the worker whose period lost it, for
	// steal attribution: a later dispatch containing such tasks by a
	// different worker is a steal.
	lostBy map[int]int
	// periodSeq numbers each worker's dispatches so trace exporters can
	// pair a dispatch with its commit or kill.
	periodSeq []int
	// spanner frames each worker's lifecycle and episodes as B/E span
	// pairs; workerSpan/epSpan hold the open spans per worker index.
	spanner    *obs.Spanner
	workerSpan []obs.Span
	epSpan     []obs.Span
	// dispatchAt / parkedAt / epWork feed the bundle-latency, idle-time
	// and per-episode-work quantile summaries.
	dispatchAt []float64
	parkedAt   []float64
	epWork     []float64
	bundleLatQ *obs.QuantileHist
	idleQ      *obs.QuantileHist
}

func newFarmObs(o Obs, c float64, workers []Worker) *farmObs {
	if !o.enabled() {
		return nil
	}
	f := &farmObs{
		sink:       o.Sink,
		reg:        o.Metrics,
		m:          newSimMetrics(o.Metrics, c),
		lostBy:     make(map[int]int),
		periodSeq:  make([]int, len(workers)),
		spanner:    obs.NewSpanner(o.Sink),
		workerSpan: make([]obs.Span, len(workers)),
		epSpan:     make([]obs.Span, len(workers)),
		dispatchAt: make([]float64, len(workers)),
		parkedAt:   make([]float64, len(workers)),
		epWork:     make([]float64, len(workers)),
	}
	if reg := o.Metrics; reg != nil {
		f.perWorker = make([]workerMetrics, len(workers))
		for i := range workers {
			f.perWorker[i] = newWorkerMetrics(reg, workers[i].ID)
		}
		f.bundleLatQ = reg.Quantiles("cs_bundle_latency", "dispatch-to-outcome latency of task bundles")
		f.idleQ = reg.Quantiles("cs_worker_idle_time", "time workers spent parked on an empty pool")
	}
	return f
}

func (f *farmObs) emit(e obs.Event) {
	if f.sink != nil {
		f.sink.Emit(e)
	}
}

func (f *farmObs) episodeStart(w *farmWorker, now float64) {
	if f == nil {
		return
	}
	if f.spanner != nil {
		if !f.workerSpan[w.idx].Active() {
			f.workerSpan[w.idx] = f.spanner.Start(now, w.stats.ID, "worker", obs.SpanAttrs{})
		}
		f.epSpan[w.idx] = f.workerSpan[w.idx].Child(now, "episode", obs.SpanAttrs{})
	}
	f.emit(f.epSpan[w.idx].Attach(obs.Event{Time: now, Worker: w.stats.ID, Kind: EventEpisodeStart.String()}))
	if f.m != nil {
		f.m.episodes.Inc()
		f.perWorker[w.idx].episodes.Inc()
	}
}

// episodeEnd closes the worker's episode span and flushes its
// per-episode committed work into the quantile summary. now is the
// episode's end time: the reclaim instant or the voluntary end.
func (f *farmObs) episodeEnd(w *farmWorker, now float64) {
	if f == nil {
		return
	}
	f.epSpan[w.idx].End(now)
	f.epSpan[w.idx] = obs.Span{}
	if f.m != nil {
		f.m.epWorkQ.Observe(f.epWork[w.idx])
	}
	f.epWork[w.idx] = 0
}

// parked marks the worker idle on an empty pool; woke closes the idle
// stretch when a requeue restarts it.
func (f *farmObs) parked(w *farmWorker, now float64) {
	if f == nil {
		return
	}
	f.parkedAt[w.idx] = now
}

func (f *farmObs) woke(w *farmWorker, now float64) {
	if f == nil {
		return
	}
	if f.idleQ != nil {
		f.idleQ.Observe(now - f.parkedAt[w.idx])
	}
}

// dispatch records a period dispatch and returns its per-worker
// sequence number (the trace's period index). Tasks previously lost by
// another worker count as stolen and emit an EventSteal marker.
func (f *farmObs) dispatch(w *farmWorker, now, length float64, bundle []Task) int {
	if f == nil {
		return 0
	}
	period := f.periodSeq[w.idx]
	f.periodSeq[w.idx]++
	f.dispatchAt[w.idx] = now
	stolen := 0
	for _, task := range bundle {
		if loser, ok := f.lostBy[task.ID]; ok {
			delete(f.lostBy, task.ID)
			if loser != w.stats.ID {
				stolen++
			}
		}
	}
	ep := f.epSpan[w.idx]
	f.emit(ep.Attach(obs.Event{Time: now, Worker: w.stats.ID, Kind: EventDispatch.String(),
		Period: period, Length: length, Tasks: len(bundle)}))
	if stolen > 0 {
		f.emit(ep.Attach(obs.Event{Time: now, Worker: w.stats.ID, Kind: EventSteal.String(),
			Period: period, Tasks: stolen}))
	}
	if f.m != nil {
		f.m.dispatches.Inc()
		f.m.periodLen.Observe(length)
		f.m.periodLenQ.Observe(length)
		if stolen > 0 {
			f.m.steals.Inc()
		}
	}
	return period
}

func (f *farmObs) commit(w *farmWorker, period int, now, length, used float64, bundle []Task) {
	if f == nil {
		return
	}
	f.epWork[w.idx] += used
	f.emit(f.epSpan[w.idx].Attach(obs.Event{Time: now, Worker: w.stats.ID, Kind: EventCommit.String(),
		Period: period, Length: length, Tasks: len(bundle)}))
	if f.m != nil {
		f.m.commits.Inc()
		f.m.committed.Add(used)
		f.m.overhead.Add(f.m.c)
		f.bundleLatQ.Observe(now - f.dispatchAt[w.idx])
		pw := &f.perWorker[w.idx]
		pw.committed.Add(used)
		pw.overhead.Add(f.m.c)
		pw.tasksDone.Add(uint64(len(bundle)))
	}
}

func (f *farmObs) kill(w *farmWorker, period int, now, length, used float64, bundle []Task) {
	if f == nil {
		return
	}
	for _, task := range bundle {
		f.lostBy[task.ID] = w.stats.ID
	}
	f.emit(f.epSpan[w.idx].Attach(obs.Event{Time: now, Worker: w.stats.ID, Kind: EventKill.String(),
		Period: period, Length: length, Tasks: len(bundle)}))
	if f.m != nil {
		f.m.kills.Inc()
		f.m.lost.Add(used)
		f.bundleLatQ.Observe(now - f.dispatchAt[w.idx])
		pw := &f.perWorker[w.idx]
		pw.lost.Add(used)
		pw.tasksLost.Add(uint64(len(bundle)))
	}
}

func (f *farmObs) voluntaryEnd(w *farmWorker, now float64) {
	if f == nil {
		return
	}
	f.emit(f.epSpan[w.idx].Attach(obs.Event{Time: now, Worker: w.stats.ID, Kind: EventVoluntaryEnd.String(), Period: -1}))
	if f.m != nil {
		f.m.voluntary.Inc()
	}
}

// finish closes the spans a completed run leaves open (a worker's
// lifecycle span always; its episode span when the run ended mid-
// episode) and publishes the end-of-run engine and farm gauges.
func (f *farmObs) finish(eng *Engine, res *FarmResult) {
	if f == nil {
		return
	}
	for i := range f.workerSpan {
		f.epSpan[i].End(res.Makespan)
		f.workerSpan[i].End(res.Makespan)
	}
	if f.reg == nil {
		return
	}
	f.reg.Gauge("cs_engine_events_fired", "discrete events the engine executed").Set(float64(eng.Fired()))
	f.reg.Gauge("cs_farm_makespan", "farm run makespan").Set(res.Makespan)
	f.reg.Gauge("cs_farm_efficiency", "committed work over total borrowed time").Set(res.Efficiency())
	drained := 0.0
	if res.Drained {
		drained = 1
	}
	f.reg.Gauge("cs_farm_drained", "1 when every task committed before MaxTime").Set(drained)
}
