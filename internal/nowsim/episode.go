package nowsim

import (
	"fmt"

	"repro/internal/lifefn"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/stats"
)

// EpisodeResult is the outcome of one cycle-stealing episode.
type EpisodeResult struct {
	// Work is the committed work: Σ (t_i - c) over completed periods.
	Work float64
	// Lost is the work in progress destroyed when the owner returned
	// (zero if the episode ended voluntarily).
	Lost float64
	// Overhead is the communication time spent on completed periods.
	Overhead float64
	// PeriodsDispatched counts all periods started.
	PeriodsDispatched int
	// PeriodsCommitted counts periods that completed before reclaim.
	PeriodsCommitted int
	// Duration is the episode wall time: min(reclaim, voluntary end).
	Duration float64
	// Reclaimed reports whether the owner's return ended the episode.
	Reclaimed bool
}

// RunEpisode plays one episode under the paper's draconian semantics,
// as a discrete-event simulation: the coordinator dispatches periods
// according to policy; a period whose end arrives before the owner's
// return commits t-c units of work; the owner's return at reclaim kills
// the period in flight and ends the episode. c is the per-period
// communication overhead; reclaim is the (externally sampled) time of
// the owner's return.
//
// All closures here are hoisted to episode setup: the per-period steady
// state schedules the shared commit closure with curT updated in place,
// which is sound because exactly one period is ever in flight.
//
//cs:hotpath episode
func RunEpisode(policy Policy, c, reclaim float64) EpisodeResult {
	if c < 0 {
		panic(fmt.Sprintf("nowsim: negative overhead %g", c)) //lint:allow hotalloc panic path, never taken in steady state
	}
	policy.Reset()
	var (
		eng   Engine
		res   EpisodeResult
		end   bool
		owner Handle
		curT  float64 // length of the single period in flight
	)
	//lint:allow hotalloc one closure per episode, not per period
	ownerBack := func() {
		// Kills whatever is in flight: the dispatch loop checks `end`
		// before committing.
		end = true
		res.Reclaimed = true
		res.Duration = eng.Now()
	}
	if reclaim >= 0 && reclaim < 1e300 {
		owner = eng.At(reclaim, ownerBack)
	}
	var dispatch func()
	// commit handles every period's completion: results return to the
	// coordinator. It reads curT (set by dispatch when the period was
	// scheduled) before dispatching the next.
	//lint:allow hotalloc one closure per episode, re-armed each period
	commit := func() {
		if end {
			return
		}
		t := curT
		res.PeriodsCommitted++
		res.Work += sched.PositiveSub(t, c)
		if t > c {
			res.Overhead += c
		} else {
			res.Overhead += t
		}
		dispatch()
	}
	//lint:allow hotalloc one closure per episode, not per period
	dispatch = func() {
		if end {
			return
		}
		t, ok := policy.NextPeriod(eng.Now())
		if !ok || t <= 0 {
			// Voluntary end: the episode is over before the owner
			// returns; the pending owner event must not fire.
			end = true
			res.Duration = eng.Now()
			owner.Cancel()
			return
		}
		res.PeriodsDispatched++
		periodEnd := eng.Now() + t
		if periodEnd < reclaim {
			curT = t
			eng.At(periodEnd, commit)
			return
		}
		// The owner returns at or before the period boundary ("if B is
		// reclaimed by time T_k, the episode ends"): the work is lost.
		res.Lost += sched.PositiveSub(t, c)
	}
	dispatch()
	eng.RunAll()
	if !res.Reclaimed && res.Duration == 0 {
		res.Duration = eng.Now()
	}
	return res
}

// runEpisodeEmit is RunEpisode with a structured event hook: emit
// receives the log as it happens (RunEpisodeRecorded collects it;
// RunEpisodeObs forwards it to an obs.Sink). It is a separate loop
// rather than a hook inside RunEpisode because the hook's captured
// variables enlarge every per-period closure — measurably (>10%) more
// than the ≤2% disabled-cost budget even when emit is nil. The two
// loops must compute identical results for identical inputs; the
// determinism and recorded-vs-plain regression tests pin that
// equivalence, so edits to either loop must keep its twin in step —
// including the closure hoisting: both loops re-arm one shared commit
// closure per period with curT/curIdx updated in place.
//
//cs:hotpath episode-emit
func runEpisodeEmit(policy Policy, c, reclaim float64, emit func(EpisodeEvent)) EpisodeResult {
	if c < 0 {
		panic(fmt.Sprintf("nowsim: negative overhead %g", c)) //lint:allow hotalloc panic path, never taken in steady state
	}
	policy.Reset()
	var (
		eng    Engine
		res    EpisodeResult
		end    bool
		owner  Handle
		curT   float64 // length of the single period in flight
		curIdx int     // index of the single period in flight
	)
	//lint:allow hotalloc one closure per episode, not per period
	ownerBack := func() {
		end = true
		res.Reclaimed = true
		res.Duration = eng.Now()
	}
	if reclaim >= 0 && reclaim < 1e300 {
		owner = eng.At(reclaim, ownerBack)
	}
	var dispatch func()
	//lint:allow hotalloc one closure per episode, re-armed each period
	commit := func() {
		if end {
			return
		}
		t, idx := curT, curIdx
		res.PeriodsCommitted++
		res.Work += sched.PositiveSub(t, c)
		if t > c {
			res.Overhead += c
		} else {
			res.Overhead += t
		}
		emit(EpisodeEvent{Time: eng.Now(), Kind: EventCommit, Period: idx, Length: t})
		dispatch()
	}
	//lint:allow hotalloc one closure per episode, not per period
	dispatch = func() {
		if end {
			return
		}
		t, ok := policy.NextPeriod(eng.Now())
		if !ok || t <= 0 {
			end = true
			res.Duration = eng.Now()
			owner.Cancel()
			emit(EpisodeEvent{Time: eng.Now(), Kind: EventVoluntaryEnd, Period: -1})
			return
		}
		idx := res.PeriodsDispatched
		res.PeriodsDispatched++
		emit(EpisodeEvent{Time: eng.Now(), Kind: EventDispatch, Period: idx, Length: t})
		periodEnd := eng.Now() + t
		if periodEnd < reclaim {
			curT, curIdx = t, idx
			eng.At(periodEnd, commit)
			return
		}
		res.Lost += sched.PositiveSub(t, c)
		//lint:allow hotalloc kill closure fires at most once, at episode end
		eng.At(reclaim, func() {
			emit(EpisodeEvent{Time: eng.Now(), Kind: EventKill, Period: idx, Length: t})
		})
	}
	dispatch()
	eng.RunAll()
	if !res.Reclaimed && res.Duration == 0 {
		res.Duration = eng.Now()
	}
	return res
}

// runEpisodeMaybe routes through the hooked loop only when emit is
// non-nil, keeping unobserved runs on the fast runner.
func runEpisodeMaybe(policy Policy, c, reclaim float64, emit func(EpisodeEvent)) EpisodeResult {
	if emit == nil {
		return RunEpisode(policy, c, reclaim)
	}
	return runEpisodeEmit(policy, c, reclaim, emit)
}

// MonteCarloResult aggregates a Monte-Carlo run of episodes.
type MonteCarloResult struct {
	Work      stats.Summary
	Lost      stats.Summary
	Periods   stats.Summary
	Reclaimed int64
	Episodes  int64
}

// MonteCarlo runs n independent episodes of policy against owner with
// overhead c, using a deterministic stream seeded by seed, and returns
// aggregate statistics. The mean of Work estimates E(S; p) when the
// policy plays a fixed schedule and the owner's survival is p.
func MonteCarlo(policy Policy, owner Owner, c float64, n int, seed uint64) MonteCarloResult {
	return MonteCarloObs(policy, owner, c, n, seed, Obs{})
}

// MonteCarloObs is MonteCarlo with observability: every episode's
// events stream to o.Sink (worker 0) and o.Metrics accumulates the
// standard metric set. The RNG stream is consumed outside the episode
// runner, so the aggregate statistics are identical with the sink
// enabled or disabled — the determinism regression tests assert this
// byte for byte.
func MonteCarloObs(policy Policy, owner Owner, c float64, n int, seed uint64, o Obs) MonteCarloResult {
	src := rng.New(seed)
	m := newSimMetrics(o.Metrics, c)
	// The whole run is one "mc-batch" span on the coordinator row
	// (worker -1), with the episode index as its time axis.
	batch := obs.NewSpanner(o.Sink).Start(0, -1, "mc-batch", obs.SpanAttrs{Tasks: n})
	emit := o.episodeEmitIn(0, m, batch)
	var work, lost, periods stats.Running
	var reclaimed int64
	for i := 0; i < n; i++ {
		r := owner.ReclaimAfter(src)
		res := runEpisodeMaybe(policy, c, r, emit)
		m.episodeDone()
		work.Add(res.Work)
		lost.Add(res.Lost)
		periods.Add(float64(res.PeriodsCommitted))
		if res.Reclaimed {
			reclaimed++
		}
	}
	batch.End(float64(n))
	return MonteCarloResult{
		Work:      stats.Summarize(&work),
		Lost:      stats.Summarize(&lost),
		Periods:   stats.Summarize(&periods),
		Reclaimed: reclaimed,
		Episodes:  int64(n),
	}
}

// ValidateDistribution runs n episodes of a fixed schedule and tests
// the full distribution of committed-period counts against the exact
// probabilities of sched.CommitProbabilities with Pearson's chi-square.
// Cells with expected count below minExpected are merged into their
// left neighbour (the standard validity adjustment). It returns the
// statistic and p-value; a p-value that is not minuscule on large n
// validates the simulator beyond the mean identity.
func ValidateDistribution(s sched.Schedule, l lifefn.Life, c float64, n int, seed uint64, minExpected float64) (stat, p float64, err error) {
	if minExpected <= 0 {
		minExpected = 10
	}
	probs := sched.CommitProbabilities(s, l)
	counts := make([]int64, len(probs))
	src := rng.New(seed)
	owner := LifeOwner{Life: l}
	pol := NewSchedulePolicy(s, "validate-dist")
	for i := 0; i < n; i++ {
		res := RunEpisode(pol, c, owner.ReclaimAfter(src))
		k := res.PeriodsCommitted
		if k >= len(counts) {
			k = len(counts) - 1
		}
		counts[k]++
	}
	// Merge low-expectation cells leftward.
	var mergedObs []int64
	var mergedExp []float64
	for i := range probs {
		e := probs[i] * float64(n)
		o := counts[i]
		if len(mergedExp) > 0 && (e < minExpected || mergedExp[len(mergedExp)-1] < minExpected) {
			mergedExp[len(mergedExp)-1] += e
			mergedObs[len(mergedObs)-1] += o
			continue
		}
		mergedExp = append(mergedExp, e)
		mergedObs = append(mergedObs, o)
	}
	// Drop zero-probability cells that stayed empty.
	obs := mergedObs[:0:0]
	exp := mergedExp[:0:0]
	for i := range mergedExp {
		if mergedExp[i] > 0 {
			obs = append(obs, mergedObs[i])
			exp = append(exp, mergedExp[i])
		} else if mergedObs[i] != 0 {
			return 0, 0, fmt.Errorf("nowsim: %d episodes landed in a zero-probability cell", mergedObs[i])
		}
	}
	return stats.ChiSquare(obs, exp, 0)
}

// ValidateExpectedWork runs a Monte-Carlo estimate of a schedule's work
// under life function l and returns the analytic E(S; p), the estimate,
// and the absolute z-score of their difference (estimate standard
// errors). A z-score below ~4 on a large n validates equation (2.1).
func ValidateExpectedWork(s sched.Schedule, l lifefn.Life, c float64, n int, seed uint64) (analytic float64, mc stats.Summary, z float64) {
	analytic = sched.ExpectedWork(s, l, c)
	res := MonteCarlo(NewSchedulePolicy(s, "validate"), LifeOwner{Life: l}, c, n, seed)
	mc = res.Work
	if mc.StdErr > 0 {
		z = abs(mc.Mean-analytic) / mc.StdErr
	}
	return analytic, mc, z
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
