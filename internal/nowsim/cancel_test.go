package nowsim

import (
	"context"
	"reflect"
	"testing"
	"time"

	"repro/internal/lifefn"
	"repro/internal/obs"
)

func cancelTestOwner(t *testing.T) Owner {
	t.Helper()
	l, err := lifefn.NewUniform(200)
	if err != nil {
		t.Fatal(err)
	}
	return LifeOwner{Life: l}
}

// An uncancelled MonteCarloCtx run must be bit-identical to
// MonteCarloObs: same statistics and same trace events.
func TestMonteCarloCtxMatchesMonteCarlo(t *testing.T) {
	owner := cancelTestOwner(t)
	pol := func() Policy { return &FixedChunkPolicy{Chunk: 15} }
	var a, b obs.BufferSink
	want := MonteCarloObs(pol(), owner, 1, 5000, 42, Obs{Sink: &a})
	got, err := MonteCarloCtx(context.Background(), pol(), owner, 1, 5000, 42, Obs{Sink: &b})
	if err != nil {
		t.Fatalf("MonteCarloCtx: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("results differ:\n got %+v\nwant %+v", got, want)
	}
	if !reflect.DeepEqual(a.Events, b.Events) {
		t.Errorf("traces differ: %d vs %d events", len(a.Events), len(b.Events))
	}
}

// A request-traced context must not change the simulation one bit, and
// the run must appear in the trace as an "mc" phase annotated with the
// episode count.
func TestMonteCarloCtxRecordsTracePhase(t *testing.T) {
	owner := cancelTestOwner(t)
	pol := func() Policy { return &FixedChunkPolicy{Chunk: 15} }
	want := MonteCarloObs(pol(), owner, 1, 5000, 42, Obs{})

	rt := obs.NewReqTrace("estimate")
	ctx := obs.ContextWithReqTrace(context.Background(), rt)
	got, err := MonteCarloCtx(ctx, pol(), owner, 1, 5000, 42, Obs{})
	if err != nil {
		t.Fatalf("MonteCarloCtx: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("tracing changed the result:\n got %+v\nwant %+v", got, want)
	}
	rec := rt.Finalize(200)
	if !(rec.Breakdown["mc_ms"] >= 0) {
		t.Fatalf("trace missing mc phase: %+v", rec.Breakdown)
	}
	found := false
	for _, p := range rec.Phases {
		if p.Name == "mc" {
			found = true
			if p.Attrs["episodes"] != "5000" {
				t.Errorf("mc phase episodes = %q, want 5000", p.Attrs["episodes"])
			}
			if p.Attrs["cancelled"] != "" {
				t.Errorf("uncancelled run marked cancelled: %+v", p.Attrs)
			}
		}
	}
	if !found {
		t.Fatalf("no mc phase recorded: %+v", rec.Phases)
	}

	// A cancelled run annotates the partial count and the cancellation.
	rt2 := obs.NewReqTrace("estimate")
	cctx, cancel := context.WithCancel(obs.ContextWithReqTrace(context.Background(), rt2))
	cancel()
	if _, err := MonteCarloCtx(cctx, pol(), owner, 1, 5000, 42, Obs{}); err == nil {
		t.Fatal("expected a context error")
	}
	rec2 := rt2.Finalize(504)
	for _, p := range rec2.Phases {
		if p.Name == "mc" {
			if p.Attrs["cancelled"] != "true" || p.Attrs["episodes"] != "0" {
				t.Errorf("cancelled mc phase attrs = %+v", p.Attrs)
			}
		}
	}
}

// A context cancelled before the run starts stops it at the first
// stride check, reporting the context error and zero episodes.
func TestMonteCarloCtxCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	owner := cancelTestOwner(t)
	res, err := MonteCarloCtx(ctx, &FixedChunkPolicy{Chunk: 15}, owner, 1, 5000, 1, Obs{})
	if err == nil {
		t.Fatal("expected a context error")
	}
	if res.Episodes != 0 {
		t.Errorf("episodes = %d, want 0", res.Episodes)
	}
}

// A deadline that expires mid-run yields a partial result: fewer
// episodes than requested, a multiple of the check stride, and the
// partial statistics still populated.
func TestMonteCarloCtxDeadlineMidRun(t *testing.T) {
	owner := cancelTestOwner(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	// Large n so the deadline reliably lands mid-run.
	res, err := MonteCarloCtx(ctx, &FixedChunkPolicy{Chunk: 15}, owner, 1, 200_000_000, 1, Obs{})
	if err == nil {
		t.Skip("run finished before the cancel landed; nothing to assert")
	}
	if res.Episodes <= 0 || res.Episodes >= 200_000_000 {
		t.Errorf("episodes = %d, want a partial count", res.Episodes)
	}
	if res.Episodes%cancelCheckStride != 0 {
		t.Errorf("episodes = %d, want a multiple of the stride %d", res.Episodes, cancelCheckStride)
	}
	if res.Work.N != res.Episodes {
		t.Errorf("work summary covers %d episodes, want %d", res.Work.N, res.Episodes)
	}
}
