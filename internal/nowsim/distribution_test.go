package nowsim

import (
	"math"
	"testing"

	"repro/internal/lifefn"
	"repro/internal/rng"
	"repro/internal/sched"
)

func TestCommitProbabilitiesExactSmallCase(t *testing.T) {
	// Uniform L=10, S=(4, 3): P(0)=p(0)-p(4)=0.4, P(1)=p(4)-p(7)=0.3,
	// P(2)=p(7)=0.3.
	l, _ := lifefn.NewUniform(10)
	s := sched.MustNew(4, 3)
	probs := sched.CommitProbabilities(s, l)
	want := []float64{0.4, 0.3, 0.3}
	if len(probs) != 3 {
		t.Fatalf("len = %d", len(probs))
	}
	for i := range want {
		if math.Abs(probs[i]-want[i]) > 1e-12 {
			t.Errorf("P(%d) = %g, want %g", i, probs[i], want[i])
		}
	}
}

func TestCommitProbabilitiesSumToOne(t *testing.T) {
	l, _ := lifefn.NewGeomIncreasing(64)
	s := sched.MustNew(40, 12, 6, 3)
	probs := sched.CommitProbabilities(s, l)
	sum := 0.0
	for _, p := range probs {
		sum += p
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("probabilities sum to %g", sum)
	}
}

func TestValidateDistributionAcceptsCorrectSimulator(t *testing.T) {
	l, _ := lifefn.NewUniform(100)
	s := sched.MustNew(20, 19, 18, 17)
	_, p, err := ValidateDistribution(s, l, 1, 50_000, 99, 10)
	if err != nil {
		t.Fatal(err)
	}
	if p < 1e-4 {
		t.Errorf("correct simulator rejected: p = %g", p)
	}
}

func TestValidateDistributionRejectsWrongModel(t *testing.T) {
	// Simulate under uniform risk but compare the tallies against the
	// doubling-risk probabilities: the chi-square statistic must be
	// decisive.
	uni, _ := lifefn.NewUniform(64)
	gi, _ := lifefn.NewGeomIncreasing(64)
	s := sched.MustNew(30, 15, 8)
	const n = 50_000
	counts := make([]int64, s.Len()+1)
	pol := NewSchedulePolicy(s, "wrong-model")
	src := rng.New(4242)
	owner := LifeOwner{Life: uni}
	for i := 0; i < n; i++ {
		res := RunEpisode(pol, 1, owner.ReclaimAfter(src))
		counts[res.PeriodsCommitted]++
	}
	wrong := sched.CommitProbabilities(s, gi)
	stat := 0.0
	for i := range wrong {
		e := wrong[i] * float64(n)
		if e < 10 {
			continue
		}
		d := float64(counts[i]) - e
		stat += d * d / e
	}
	if stat < 100 {
		t.Errorf("wrong model not rejected: chi2 stat = %g", stat)
	}
}

func TestValidateDistributionDeterministic(t *testing.T) {
	l, _ := lifefn.NewUniform(50)
	s := sched.MustNew(10, 9, 8)
	s1, p1, err := ValidateDistribution(s, l, 1, 5000, 7, 10)
	if err != nil {
		t.Fatal(err)
	}
	s2, p2, err := ValidateDistribution(s, l, 1, 5000, 7, 10)
	if err != nil {
		t.Fatal(err)
	}
	//lint:allow floatcmp same-seed determinism: bit-identical
	if s1 != s2 || p1 != p2 {
		t.Error("same seed produced different chi-square results")
	}
}
