package nowsim

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/sched"
)

func TestTaskPoolBasics(t *testing.T) {
	p, err := NewUniformTasks(10, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p.Remaining() != 10 || p.RemainingWork() != 20 {
		t.Errorf("remaining %d/%g", p.Remaining(), p.RemainingWork())
	}
	bundle, used := p.TakeBundle(5)
	if len(bundle) != 2 || used != 4 {
		t.Errorf("bundle %d tasks, %g work", len(bundle), used)
	}
	if p.Remaining() != 8 {
		t.Errorf("remaining = %d", p.Remaining())
	}
	p.Commit(bundle)
	if len(p.Completed()) != 2 || p.CompletedWork() != 4 {
		t.Errorf("completed %d/%g", len(p.Completed()), p.CompletedWork())
	}
}

func TestTaskPoolRequeuePreservesOrder(t *testing.T) {
	p, _ := NewUniformTasks(4, 1)
	bundle, _ := p.TakeBundle(2) // tasks 0, 1
	p.Requeue(bundle)
	next, _ := p.TakeBundle(1)
	if len(next) != 1 || next[0].ID != 0 {
		t.Errorf("requeued task not at front: %+v", next)
	}
	if math.Abs(p.RemainingWork()-3) > 1e-12 {
		t.Errorf("remaining work = %g", p.RemainingWork())
	}
}

func TestTakeBundleIndivisible(t *testing.T) {
	p := &TaskPool{}
	p.Push(Task{ID: 0, Duration: 3})
	p.Push(Task{ID: 1, Duration: 3})
	bundle, used := p.TakeBundle(4)
	if len(bundle) != 1 || used != 3 {
		t.Errorf("bundle %v used %g; tasks must not split", bundle, used)
	}
	// Nothing fits in a tiny budget.
	empty, _ := p.TakeBundle(1)
	if len(empty) != 0 {
		t.Error("bundle packed beyond budget")
	}
}

func TestNewRandomTasks(t *testing.T) {
	src := rng.New(3)
	p, err := NewRandomTasks(100, 1, 2, src)
	if err != nil {
		t.Fatal(err)
	}
	if p.Remaining() != 100 {
		t.Fatal("wrong count")
	}
	for _, task := range p.queue {
		if task.Duration < 1 || task.Duration >= 2 {
			t.Fatalf("duration %g outside [1, 2)", task.Duration)
		}
	}
	if _, err := NewRandomTasks(-1, 1, 2, src); err == nil {
		t.Error("negative n accepted")
	}
	if _, err := NewUniformTasks(5, 0); err == nil {
		t.Error("zero duration accepted")
	}
}

func TestRunTaskEpisodeQuantization(t *testing.T) {
	// Period 10, c=1 → budget 9; tasks of 4 pack 2 per bundle (slack 1).
	pool, _ := NewUniformTasks(10, 4)
	s := sched.MustNew(10, 10)
	res := RunTaskEpisode(NewSchedulePolicy(s, ""), pool, 1, 1000)
	if res.TasksCompleted != 4 {
		t.Errorf("completed %d tasks, want 4", res.TasksCompleted)
	}
	if math.Abs(res.Work-16) > 1e-12 {
		t.Errorf("work = %g, want 16", res.Work)
	}
	if math.Abs(res.Slack-2) > 1e-12 {
		t.Errorf("slack = %g, want 2", res.Slack)
	}
	if pool.Remaining() != 6 {
		t.Errorf("remaining = %d", pool.Remaining())
	}
}

func TestRunTaskEpisodeLostBundleRequeued(t *testing.T) {
	pool, _ := NewUniformTasks(4, 2)
	s := sched.MustNew(5, 5) // second period killed at reclaim 7
	res := RunTaskEpisode(NewSchedulePolicy(s, ""), pool, 1, 7)
	if res.TasksCompleted != 2 || res.TasksLost != 2 {
		t.Errorf("completed/lost = %d/%d", res.TasksCompleted, res.TasksLost)
	}
	// Lost tasks must be back in the pool.
	if pool.Remaining() != 2 {
		t.Errorf("remaining = %d, want 2 (requeued)", pool.Remaining())
	}
	if res.Work != 4 || res.Lost != 4 {
		t.Errorf("work/lost = %g/%g", res.Work, res.Lost)
	}
}

func TestRunTaskEpisodeStopsWhenNothingFits(t *testing.T) {
	pool, _ := NewUniformTasks(2, 50)
	s := sched.MustNew(10, 10)
	res := RunTaskEpisode(NewSchedulePolicy(s, ""), pool, 1, 1000)
	if res.PeriodsDispatched != 0 {
		t.Errorf("dispatched %d periods with oversized tasks", res.PeriodsDispatched)
	}
	if res.Reclaimed {
		t.Error("voluntary stop misreported as reclaim")
	}
}

// tightPolicy emits a fixed period barely above the overhead, driving
// every dispatch budget through the t ⊖ c clamp near its boundary.
type tightPolicy struct{ t float64 }

func (p tightPolicy) NextPeriod(float64) (float64, bool) { return p.t, true }
func (p tightPolicy) Reset()                             {}
func (p tightPolicy) String() string                     { return "tight" }

func TestRunTaskEpisodeTightPeriodBudgetClamped(t *testing.T) {
	const c = 1.0
	pool, err := NewUniformTasks(8, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	res := RunTaskEpisode(tightPolicy{t: c + 0.25}, pool, c, math.Inf(1))
	// Each period's budget is exactly t ⊖ c = 0.25: one task per
	// dispatch, zero slack, and the pool drains before the episode ends
	// voluntarily. A budget that went negative (or picked up rounding
	// noise) would dispatch nothing or leak slack.
	if res.TasksCompleted != 8 {
		t.Errorf("completed %d tasks, want 8", res.TasksCompleted)
	}
	if res.PeriodsDispatched != 8 {
		t.Errorf("dispatched %d periods, want 8", res.PeriodsDispatched)
	}
	if res.Slack != 0 {
		t.Errorf("slack = %g, want 0", res.Slack)
	}
	if pool.Remaining() != 0 {
		t.Errorf("remaining = %d, want 0", pool.Remaining())
	}
}
