package nowsim

import (
	"math"
	"testing"
)

func TestEngineOrdersEvents(t *testing.T) {
	var e Engine
	var order []int
	e.At(3, func() { order = append(order, 3) })
	e.At(1, func() { order = append(order, 1) })
	e.At(2, func() { order = append(order, 2) })
	e.RunAll()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
	if e.Now() != 3 {
		t.Errorf("clock = %g", e.Now())
	}
	if e.Fired() != 3 {
		t.Errorf("fired = %d", e.Fired())
	}
}

func TestEngineFIFOTieBreak(t *testing.T) {
	var e Engine
	var order []int
	e.At(5, func() { order = append(order, 1) })
	e.At(5, func() { order = append(order, 2) })
	e.At(5, func() { order = append(order, 3) })
	e.RunAll()
	for i, v := range order {
		if v != i+1 {
			t.Fatalf("tie-break violated FIFO: %v", order)
		}
	}
}

func TestEngineEventsScheduleEvents(t *testing.T) {
	var e Engine
	count := 0
	var chain Action
	chain = func() {
		count++
		if count < 5 {
			e.After(1, chain)
		}
	}
	e.After(1, chain)
	e.RunAll()
	if count != 5 || e.Now() != 5 {
		t.Errorf("count = %d, clock = %g", count, e.Now())
	}
}

func TestEngineRunUntil(t *testing.T) {
	var e Engine
	fired := []float64{}
	for _, tt := range []float64{1, 2, 3, 4} {
		at := tt
		e.At(at, func() { fired = append(fired, at) })
	}
	e.Run(2.5)
	if len(fired) != 2 {
		t.Errorf("fired %v, want events at 1 and 2", fired)
	}
	if e.Pending() != 2 {
		t.Errorf("pending = %d", e.Pending())
	}
	e.Run(math.Inf(1))
	if len(fired) != 4 {
		t.Errorf("fired %v after drain", fired)
	}
}

func TestEngineRunUntilInclusive(t *testing.T) {
	var e Engine
	hit := false
	e.At(2, func() { hit = true })
	e.Run(2)
	if !hit {
		t.Error("event at exactly `until` did not fire")
	}
}

func TestEngineCancel(t *testing.T) {
	var e Engine
	hit := false
	h := e.At(1, func() { hit = true })
	h.Cancel()
	e.RunAll()
	if hit {
		t.Error("canceled event fired")
	}
	h.Cancel() // double cancel is a no-op
	(Handle{}).Cancel()
}

func TestEnginePanicsOnPastEvent(t *testing.T) {
	var e Engine
	e.At(5, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(1, func() {})
	})
	e.RunAll()
}

func TestEnginePanicsOnNegativeDelay(t *testing.T) {
	var e Engine
	defer func() {
		if recover() == nil {
			t.Error("negative delay did not panic")
		}
	}()
	e.After(-1, func() {})
}

func TestEngineStepEmpty(t *testing.T) {
	var e Engine
	if e.Step() {
		t.Error("Step on empty queue returned true")
	}
}
