package nowsim

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/lifefn"
	"repro/internal/sched"
)

// Policy decides, period by period, how much of the borrowed
// workstation's time the coordinator commits next. elapsed is the
// episode time consumed so far. ok=false ends the episode voluntarily.
//
// Policies are stateful and single-episode; Reset is called between
// episodes so one value can be reused across Monte-Carlo replications.
type Policy interface {
	//cs:unit elapsed=time return=time
	NextPeriod(elapsed float64) (t float64, ok bool)
	Reset()
	String() string
}

// SchedulePolicy plays out a precomputed schedule (guideline, optimal
// or baseline).
type SchedulePolicy struct {
	Schedule sched.Schedule
	Name     string
	next     int
}

// NewSchedulePolicy wraps a schedule as a policy.
func NewSchedulePolicy(s sched.Schedule, name string) *SchedulePolicy {
	return &SchedulePolicy{Schedule: s, Name: name}
}

// NextPeriod implements Policy.
func (p *SchedulePolicy) NextPeriod(elapsed float64) (float64, bool) {
	if p.next >= p.Schedule.Len() {
		return 0, false
	}
	t := p.Schedule.Period(p.next)
	p.next++
	return t, true
}

// Reset implements Policy.
func (p *SchedulePolicy) Reset() { p.next = 0 }

// String implements Policy.
func (p *SchedulePolicy) String() string {
	if p.Name != "" {
		return p.Name
	}
	return "schedule"
}

// ProgressivePolicy re-plans each period from the survival observed so
// far, via core.Progressive (the Section 6 conditional-probability
// regimen).
type ProgressivePolicy struct {
	prog *core.Progressive
	name string
}

// NewProgressivePolicy builds a progressive policy over life function l
// with overhead c.
func NewProgressivePolicy(l lifefn.Life, c float64, opt core.PlanOptions) (*ProgressivePolicy, error) {
	prog, err := core.NewProgressive(l, c, opt)
	if err != nil {
		return nil, err
	}
	return &ProgressivePolicy{prog: prog, name: fmt.Sprintf("progressive(%s)", l)}, nil
}

// NextPeriod implements Policy. Planning errors surface as a voluntary
// stop; the simulator treats them as "no further work dispatched".
// Re-planning from scratch is this policy's documented per-period cost
// (it runs a full optimizer pass), so the allocating planner chain is
// allowed here; the schedule-driven policies keep the episode loop
// allocation-free.
func (p *ProgressivePolicy) NextPeriod(elapsed float64) (float64, bool) {
	t, ok, err := p.prog.NextPeriod() //lint:allow hotalloc progressive re-planning allocates by design; per-period optimizer pass, not the steady-state episode loop
	if err != nil || !ok {
		return 0, false
	}
	return t, true
}

// Reset implements Policy.
func (p *ProgressivePolicy) Reset() { p.prog.Reset() }

// String implements Policy.
func (p *ProgressivePolicy) String() string { return p.name }

// FixedChunkPolicy dispatches constant-length periods forever (the
// practitioner's "pick a chunk size" baseline, unbounded variant).
type FixedChunkPolicy struct {
	Chunk float64
}

// NextPeriod implements Policy.
func (p *FixedChunkPolicy) NextPeriod(elapsed float64) (float64, bool) {
	if p.Chunk <= 0 {
		return 0, false
	}
	return p.Chunk, true
}

// Reset implements Policy.
func (p *FixedChunkPolicy) Reset() {}

// String implements Policy.
func (p *FixedChunkPolicy) String() string { return fmt.Sprintf("fixed(%g)", p.Chunk) }
