package nowsim

import (
	"fmt"

	"repro/internal/lifefn"
	"repro/internal/rng"
)

// Owner models the workstation owner's behaviour: when, relative to the
// start of a cycle-stealing episode, the owner reclaims the machine.
type Owner interface {
	// ReclaimAfter samples the time from episode start to reclamation.
	ReclaimAfter(r *rng.Source) float64
	String() string
}

// LifeOwner reclaims at a random time whose survival function is the
// given life function — the exact stochastic model behind E(S; p).
type LifeOwner struct {
	Life lifefn.Life
}

// ReclaimAfter implements Owner by inverse-transform sampling of the
// life function.
func (o LifeOwner) ReclaimAfter(r *rng.Source) float64 {
	horizon := o.Life.Horizon()
	if horizon > 0 && !isInf(horizon) {
		return r.FromSurvival(o.Life.P, horizon)
	}
	return r.FromSurvival(o.Life.P, 0)
}

// String implements Owner.
func (o LifeOwner) String() string { return fmt.Sprintf("life-owner(%s)", o.Life) }

// SessionOwner alternates presence and absence sessions; an episode
// begins when the owner leaves, and the reclaim time is the absence
// duration. Absences are sampled from the given sampler (e.g. the
// synthetic session generators in internal/trace).
type SessionOwner struct {
	// AbsenceSampler draws one absence duration.
	AbsenceSampler func(r *rng.Source) float64
	Name           string
}

// ReclaimAfter implements Owner.
func (o SessionOwner) ReclaimAfter(r *rng.Source) float64 {
	return o.AbsenceSampler(r)
}

// String implements Owner.
func (o SessionOwner) String() string {
	if o.Name != "" {
		return o.Name
	}
	return "session-owner"
}

func isInf(x float64) bool { return x > 1e300 }
