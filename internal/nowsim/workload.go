package nowsim

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/rng"
)

// DurationDist names a task-duration distribution for workload
// generation. Data-parallel workloads differ sharply in duration
// spread — render frames are near-uniform, Monte-Carlo batches
// lognormal, search shards heavy-tailed — and the spread controls how
// much period capacity indivisibility strands (experiment E15).
type DurationDist int

const (
	// DistUniform draws durations uniformly from [Lo, Hi).
	DistUniform DurationDist = iota
	// DistLogNormal draws exp(N(Mu, Sigma)) clipped to [Lo, Hi].
	DistLogNormal
	// DistBimodal mixes two uniform modes: [Lo, Lo+(Hi-Lo)/4) with
	// probability 0.8 and [Hi-(Hi-Lo)/4, Hi) otherwise — many small
	// tasks plus an occasional heavy one.
	DistBimodal
	// DistParetoCapped draws a Pareto(alpha=1.5) tail scaled to Lo and
	// capped at Hi.
	DistParetoCapped
)

// String names the distribution.
func (d DurationDist) String() string {
	switch d {
	case DistUniform:
		return "uniform"
	case DistLogNormal:
		return "lognormal"
	case DistBimodal:
		return "bimodal"
	case DistParetoCapped:
		return "pareto-capped"
	default:
		return "unknown"
	}
}

// WorkloadSpec describes a synthetic data-parallel workload.
type WorkloadSpec struct {
	Tasks int
	Dist  DurationDist
	// Lo and Hi bound the durations (semantics per distribution).
	Lo, Hi float64
	// Mu and Sigma parameterize DistLogNormal; ignored otherwise.
	Mu, Sigma float64
}

// NewWorkload generates a task pool from the spec using src.
func NewWorkload(spec WorkloadSpec, src *rng.Source) (*TaskPool, error) {
	if spec.Tasks < 0 {
		return nil, fmt.Errorf("nowsim: negative task count %d", spec.Tasks)
	}
	if !(spec.Lo > 0) || !(spec.Hi >= spec.Lo) {
		return nil, fmt.Errorf("nowsim: invalid duration range [%g, %g)", spec.Lo, spec.Hi)
	}
	draw := func() float64 {
		switch spec.Dist {
		case DistUniform:
			return src.Uniform(spec.Lo, spec.Hi)
		case DistLogNormal:
			v := src.LogNormal(spec.Mu, spec.Sigma)
			return clamp(v, spec.Lo, spec.Hi)
		case DistBimodal:
			quarter := (spec.Hi - spec.Lo) / 4
			if src.Float64() < 0.8 {
				return src.Uniform(spec.Lo, spec.Lo+quarter)
			}
			return src.Uniform(spec.Hi-quarter, spec.Hi)
		case DistParetoCapped:
			u := src.Float64Open()
			v := spec.Lo * math.Pow(u, -1/1.5)
			return clamp(v, spec.Lo, spec.Hi)
		default:
			return spec.Lo
		}
	}
	p := &TaskPool{}
	for i := 0; i < spec.Tasks; i++ {
		p.Push(Task{ID: i, Duration: draw()})
	}
	return p, nil
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// TakeBundleBestFit removes tasks filling budget as tightly as possible
// using the best-fit-decreasing heuristic over a bounded lookahead
// window of the queue (task durations are known, a model assumption, so
// the coordinator may pack smartly). Unlike TakeBundle it may take
// tasks out of FIFO order within the window; it never splits a task.
// It returns the bundle and its total duration.
//
// window bounds how many queued tasks are considered; when it is not
// positive, a window large enough to cover the budget several times
// over at the queue's head durations is chosen automatically.
func (p *TaskPool) TakeBundleBestFit(budget float64, window int) ([]Task, float64) {
	if window <= 0 {
		window = 64
		if len(p.queue) > 0 {
			if d := p.queue[0].Duration; d > 0 {
				if est := int(4*budget/d) + 8; est > window {
					window = est
				}
			}
		}
	}
	if window > len(p.queue) {
		window = len(p.queue)
	}
	if window == 0 {
		return nil, 0
	}
	// Candidate indices sorted by decreasing duration.
	idx := make([]int, window)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return p.queue[idx[a]].Duration > p.queue[idx[b]].Duration
	})
	used := 0.0
	taken := make(map[int]bool, window)
	var bundle []Task
	for _, i := range idx {
		d := p.queue[i].Duration
		if used+d <= budget+1e-12 {
			taken[i] = true
			used += d
			bundle = append(bundle, p.queue[i])
		}
	}
	if len(bundle) == 0 {
		return nil, 0
	}
	// Remove taken tasks from the queue, preserving order of the rest.
	rest := p.queue[:0:0]
	for i, task := range p.queue {
		if i < window && taken[i] {
			continue
		}
		rest = append(rest, task)
	}
	p.queue = rest
	p.total -= used
	return bundle, used
}
