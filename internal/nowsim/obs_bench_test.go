package nowsim

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"testing"

	"repro/internal/obs"
	"repro/internal/sched"
)

// The observability acceptance criterion: the instrumented engine with
// a nil sink must sit within noise (≤ 2%) of the uninstrumented
// baseline. RunEpisodeObs with a zero Obs routes straight to
// RunEpisode (the hooked loop lives in runEpisodeEmit, used only when
// something is actually observing — see the comment there), so the
// disabled cost is one enabled() check per episode; the benchmarks
// below measure exactly that, and `make bench-obs` snapshots it to
// BENCH_obs.json so regressions show up across PRs.

// benchSchedule is long enough that per-episode setup does not
// dominate.
var benchSchedule = func() sched.Schedule {
	periods := make([]float64, 64)
	for i := range periods {
		periods[i] = 40 - 0.5*float64(i)
	}
	return sched.MustNew(periods...)
}()

const (
	benchOverhead = 1.0
	benchReclaim  = 1e9 // never reclaimed: all 64 periods dispatch and commit
)

func BenchmarkEpisodeUninstrumented(b *testing.B) {
	pol := NewSchedulePolicy(benchSchedule, "bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		RunEpisode(pol, benchOverhead, benchReclaim)
	}
}

func BenchmarkEpisodeNilSink(b *testing.B) {
	pol := NewSchedulePolicy(benchSchedule, "bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		RunEpisodeObs(pol, benchOverhead, benchReclaim, 0, Obs{})
	}
}

func BenchmarkEpisodeJSONLSink(b *testing.B) {
	pol := NewSchedulePolicy(benchSchedule, "bench")
	sink := obs.NewJSONLSink(io.Discard)
	o := Obs{Sink: sink}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		RunEpisodeObs(pol, benchOverhead, benchReclaim, 0, o)
	}
}

func BenchmarkEpisodeMetrics(b *testing.B) {
	pol := NewSchedulePolicy(benchSchedule, "bench")
	o := Obs{Metrics: obs.NewRegistry()}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		RunEpisodeObs(pol, benchOverhead, benchReclaim, 0, o)
	}
}

// TestObsOverheadSnapshot writes a machine-readable snapshot of the
// nil-sink overhead claim to the file named by BENCH_OBS_OUT (the
// `make bench-obs` target), so the zero-cost-when-disabled property is
// tracked across PRs. Without the env var the test is skipped, keeping
// plain `go test` fast.
func TestObsOverheadSnapshot(t *testing.T) {
	out := os.Getenv("BENCH_OBS_OUT")
	if out == "" {
		t.Skip("set BENCH_OBS_OUT=<file> to write the overhead snapshot")
	}
	pol := NewSchedulePolicy(benchSchedule, "bench")
	measure := func(f func()) float64 {
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				f()
			}
		})
		return float64(r.NsPerOp())
	}
	// Alternate the variants over several rounds and keep the per-variant
	// minimum: on shared machines the clock throttles in multi-second
	// windows, so sequential one-shot measurements can attribute a slow
	// window to whichever variant happened to land in it. Min-of-N across
	// interleaved rounds is robust to that.
	sink := obs.NewJSONLSink(io.Discard)
	variants := []func(){
		func() { RunEpisode(pol, benchOverhead, benchReclaim) },
		func() { RunEpisodeObs(pol, benchOverhead, benchReclaim, 0, Obs{}) },
		func() { RunEpisodeObs(pol, benchOverhead, benchReclaim, 0, Obs{Sink: sink}) },
	}
	mins := make([]float64, len(variants))
	const rounds = 5
	for r := 0; r < rounds; r++ {
		for i, f := range variants {
			ns := measure(f)
			if r == 0 || ns < mins[i] {
				mins[i] = ns
			}
		}
	}
	baseline, nilSink, jsonl := mins[0], mins[1], mins[2]

	snapshot := map[string]interface{}{
		"benchmark":            "RunEpisode, 64-period schedule, no reclaim",
		"baseline_ns_op":       baseline,
		"nil_sink_ns_op":       nilSink,
		"jsonl_sink_ns_op":     jsonl,
		"nil_overhead_percent": 100 * (nilSink - baseline) / baseline,
	}
	data, err := json.MarshalIndent(snapshot, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	fmt.Printf("obs overhead snapshot: baseline %.0f ns/op, nil-sink %.0f ns/op (%+.2f%%), jsonl %.0f ns/op\n",
		baseline, nilSink, snapshot["nil_overhead_percent"], jsonl)
	// Generous CI bound: the claim proper (≤ 2%) is checked on quiet
	// machines via `make bench-obs`; this guard only catches gross
	// regressions (e.g. an allocation sneaking into the nil path).
	if nilSink > baseline*1.25 {
		t.Errorf("nil-sink episode runner is %.1f%% slower than the uninstrumented baseline",
			100*(nilSink-baseline)/baseline)
	}
}
