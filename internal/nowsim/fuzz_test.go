package nowsim

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/lifefn"
)

// fuzzLife returns the fixed life function the parse fuzzers resolve
// specs against; parsing behavior, not planning quality, is under test.
func fuzzLife(t testing.TB) lifefn.Life {
	l, err := lifefn.NewUniform(100)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// FuzzParsePolicy asserts ParsePolicy never panics and that accepted
// specs round-trip: the canonical Name must itself parse back to the
// same Name, and the factory must produce a policy.
func FuzzParsePolicy(f *testing.F) {
	for _, seed := range []string{
		"guideline", "progressive", "fixed:25", "allatonce",
		"fixed:0", "fixed:-1", "fixed:1e308", "fixed:", " guideline ", "nope",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		l := fuzzLife(t)
		ps, err := ParsePolicy(spec, l, 1, core.PlanOptions{})
		if err != nil {
			return
		}
		if ps.Factory == nil {
			t.Fatalf("ParsePolicy(%q): nil factory without error", spec)
		}
		if ps.Factory() == nil {
			t.Fatalf("ParsePolicy(%q): factory returned nil policy", spec)
		}
		back, err := ParsePolicy(ps.Name, l, 1, core.PlanOptions{})
		if err != nil {
			t.Fatalf("canonical name %q from %q does not re-parse: %v", ps.Name, spec, err)
		}
		if back.Name != ps.Name {
			t.Fatalf("round-trip changed name: %q -> %q", ps.Name, back.Name)
		}
	})
}

// FuzzParseDist asserts ParseDist never panics and that accepted names
// round-trip through DurationDist.String.
func FuzzParseDist(f *testing.F) {
	for _, seed := range []string{"uniform", "lognormal", "bimodal", "pareto", "", "Uniform"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, name string) {
		d, err := ParseDist(name)
		if err != nil {
			return
		}
		back, err := ParseDist(d.String())
		if err != nil {
			t.Fatalf("ParseDist(%q).String() = %q does not re-parse: %v", name, d.String(), err)
		}
		if back != d {
			t.Fatalf("round-trip changed distribution: %v -> %v", d, back)
		}
	})
}

// FuzzBuildLife asserts BuildLife never panics and that every life it
// accepts is usable: non-nil, with P a valid survival probability.
func FuzzBuildLife(f *testing.F) {
	f.Add("uniform", 100.0, 0.0, 0)
	f.Add("poly", 50.0, 0.0, 2)
	f.Add("geomdec", 0.0, 8.0, 0)
	f.Add("geominc", 30.0, 0.0, 0)
	f.Add("geomdec", 0.0, -1.0, 0)
	f.Add("uniform", math.Inf(1), 0.0, 0)
	f.Add("poly", math.NaN(), 0.0, 1)
	f.Fuzz(func(t *testing.T, name string, lifespan, halfLife float64, d int) {
		l, err := BuildLife(name, lifespan, halfLife, d)
		if err != nil {
			return
		}
		if l == nil {
			t.Fatalf("BuildLife(%q, %g, %g, %d): nil life without error", name, lifespan, halfLife, d)
		}
		for _, at := range []float64{0, 1, lifespan} {
			p := l.P(at)
			if math.IsNaN(p) || p < 0 || p > 1 {
				t.Fatalf("BuildLife(%q, %g, %g, %d).P(%g) = %g, not a survival probability",
					name, lifespan, halfLife, d, at, p)
			}
		}
	})
}
