package nowsim

import (
	"fmt"
)

// EventKind tags entries of an episode's event log.
type EventKind int

const (
	// EventDispatch: the coordinator sent a period's work to the
	// borrowed workstation.
	EventDispatch EventKind = iota
	// EventCommit: a period completed and its results returned.
	EventCommit
	// EventKill: the owner returned mid-period, destroying it.
	EventKill
	// EventVoluntaryEnd: the policy declined to dispatch further work.
	EventVoluntaryEnd
	// EventSteal: a farm worker picked up tasks another worker lost to
	// its owner's return — work migrating across the farm.
	EventSteal
	// EventEpisodeStart: a farm worker began a cycle-stealing episode.
	EventEpisodeStart
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case EventDispatch:
		return "dispatch"
	case EventCommit:
		return "commit"
	case EventKill:
		return "kill"
	case EventVoluntaryEnd:
		return "voluntary-end"
	case EventSteal:
		return "steal"
	case EventEpisodeStart:
		return "episode-start"
	default:
		return "unknown"
	}
}

// EpisodeEvent is one entry of an episode's event log.
type EpisodeEvent struct {
	Time   float64
	Kind   EventKind
	Period int     // period index (-1 for voluntary end)
	Length float64 // period length for dispatch/commit/kill
}

// String renders the event for debugging output.
func (e EpisodeEvent) String() string {
	return fmt.Sprintf("t=%.4g %s period=%d len=%.4g", e.Time, e.Kind, e.Period, e.Length)
}

// RunEpisodeRecorded is RunEpisode plus a full event log — the
// observability hook for debugging policies and for teaching: the log
// shows exactly which periods the schedule risked and what the owner's
// return destroyed.
func RunEpisodeRecorded(policy Policy, c, reclaim float64) (EpisodeResult, []EpisodeEvent) {
	var log []EpisodeEvent
	res := runEpisodeEmit(policy, c, reclaim, func(e EpisodeEvent) {
		log = append(log, e)
	})
	return res, log
}
