package nowsim

import (
	"fmt"

	"repro/internal/sched"
)

// EventKind tags entries of an episode's event log.
type EventKind int

const (
	// EventDispatch: the coordinator sent a period's work to the
	// borrowed workstation.
	EventDispatch EventKind = iota
	// EventCommit: a period completed and its results returned.
	EventCommit
	// EventKill: the owner returned mid-period, destroying it.
	EventKill
	// EventVoluntaryEnd: the policy declined to dispatch further work.
	EventVoluntaryEnd
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case EventDispatch:
		return "dispatch"
	case EventCommit:
		return "commit"
	case EventKill:
		return "kill"
	case EventVoluntaryEnd:
		return "voluntary-end"
	default:
		return "unknown"
	}
}

// EpisodeEvent is one entry of an episode's event log.
type EpisodeEvent struct {
	Time   float64
	Kind   EventKind
	Period int     // period index (-1 for voluntary end)
	Length float64 // period length for dispatch/commit/kill
}

// String renders the event for debugging output.
func (e EpisodeEvent) String() string {
	return fmt.Sprintf("t=%.4g %s period=%d len=%.4g", e.Time, e.Kind, e.Period, e.Length)
}

// RunEpisodeRecorded is RunEpisode plus a full event log — the
// observability hook for debugging policies and for teaching: the log
// shows exactly which periods the schedule risked and what the owner's
// return destroyed.
func RunEpisodeRecorded(policy Policy, c, reclaim float64) (EpisodeResult, []EpisodeEvent) {
	if c < 0 {
		panic(fmt.Sprintf("nowsim: negative overhead %g", c))
	}
	policy.Reset()
	var (
		eng   Engine
		res   EpisodeResult
		log   []EpisodeEvent
		end   bool
		owner Handle
	)
	ownerBack := func() {
		end = true
		res.Reclaimed = true
		res.Duration = eng.Now()
	}
	if reclaim >= 0 && reclaim < 1e300 {
		owner = eng.At(reclaim, ownerBack)
	}
	var dispatch func()
	dispatch = func() {
		if end {
			return
		}
		t, ok := policy.NextPeriod(eng.Now())
		if !ok || t <= 0 {
			end = true
			res.Duration = eng.Now()
			owner.Cancel()
			log = append(log, EpisodeEvent{Time: eng.Now(), Kind: EventVoluntaryEnd, Period: -1})
			return
		}
		idx := res.PeriodsDispatched
		res.PeriodsDispatched++
		log = append(log, EpisodeEvent{Time: eng.Now(), Kind: EventDispatch, Period: idx, Length: t})
		periodEnd := eng.Now() + t
		if periodEnd < reclaim {
			eng.At(periodEnd, func() {
				if end {
					return
				}
				res.PeriodsCommitted++
				res.Work += sched.PositiveSub(t, c)
				if t > c {
					res.Overhead += c
				} else {
					res.Overhead += t
				}
				log = append(log, EpisodeEvent{Time: eng.Now(), Kind: EventCommit, Period: idx, Length: t})
				dispatch()
			})
			return
		}
		res.Lost += sched.PositiveSub(t, c)
		eng.At(reclaim, func() {
			log = append(log, EpisodeEvent{Time: eng.Now(), Kind: EventKill, Period: idx, Length: t})
		})
	}
	dispatch()
	eng.RunAll()
	if !res.Reclaimed && res.Duration == 0 {
		res.Duration = eng.Now()
	}
	return res, log
}
