package nowsim

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/lifefn"
	"repro/internal/rng"
	"repro/internal/sched"
)

func farmLife(t *testing.T, l float64) lifefn.Life {
	t.Helper()
	u, err := lifefn.NewUniform(l)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func guidelineFactory(t *testing.T, l lifefn.Life, c float64) func() Policy {
	t.Helper()
	pl, err := core.NewPlanner(l, c, core.PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := pl.PlanBest()
	if err != nil {
		t.Fatal(err)
	}
	return func() Policy { return NewSchedulePolicy(plan.Schedule, "guideline") }
}

func TestFarmDrainsPool(t *testing.T) {
	l := farmLife(t, 200)
	c := 1.0
	factory := guidelineFactory(t, l, c)
	workers := make([]Worker, 4)
	for i := range workers {
		workers[i] = Worker{
			ID:            i,
			Owner:         LifeOwner{Life: l},
			BusySampler:   func(r *rng.Source) float64 { return r.Uniform(5, 20) },
			PolicyFactory: factory,
		}
	}
	pool, _ := NewUniformTasks(500, 2)
	res, err := RunFarm(FarmConfig{Workers: workers, Overhead: c, Seed: 42, MaxTime: 1e6}, pool)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Drained {
		t.Fatalf("pool not drained: %d tasks left", pool.Remaining())
	}
	if res.TasksCompleted != 500 {
		t.Errorf("completed %d tasks, want 500", res.TasksCompleted)
	}
	if math.Abs(res.CommittedWork-1000) > 1e-6 {
		t.Errorf("committed work = %g, want 1000", res.CommittedWork)
	}
	if res.Makespan <= 0 || res.Makespan > 1e6 {
		t.Errorf("makespan = %g", res.Makespan)
	}
	if eff := res.Efficiency(); eff <= 0 || eff > 1 {
		t.Errorf("efficiency = %g", eff)
	}
	// Per-worker stats must sum to the totals.
	var sumTasks int
	var sumWork float64
	for _, w := range res.PerWorker {
		sumTasks += w.TasksCompleted
		sumWork += w.CommittedWork
	}
	if sumTasks != res.TasksCompleted || math.Abs(sumWork-res.CommittedWork) > 1e-9 {
		t.Errorf("per-worker sums diverge: %d/%g vs %d/%g",
			sumTasks, sumWork, res.TasksCompleted, res.CommittedWork)
	}
}

func TestFarmDeterministic(t *testing.T) {
	l := farmLife(t, 100)
	factory := guidelineFactory(t, l, 1)
	mk := func() ([]Worker, *TaskPool) {
		ws := make([]Worker, 2)
		for i := range ws {
			ws[i] = Worker{ID: i, Owner: LifeOwner{Life: l}, PolicyFactory: factory}
		}
		pool, _ := NewUniformTasks(100, 3)
		return ws, pool
	}
	w1, p1 := mk()
	r1, err := RunFarm(FarmConfig{Workers: w1, Overhead: 1, Seed: 5}, p1)
	if err != nil {
		t.Fatal(err)
	}
	w2, p2 := mk()
	r2, err := RunFarm(FarmConfig{Workers: w2, Overhead: 1, Seed: 5}, p2)
	if err != nil {
		t.Fatal(err)
	}
	//lint:allow floatcmp same-seed determinism: bit-identical
	if r1.Makespan != r2.Makespan || r1.LostWork != r2.LostWork || r1.Episodes != r2.Episodes {
		t.Error("same seed produced different farm runs")
	}
}

func TestFarmRespectsMaxTime(t *testing.T) {
	// One worker, owner returns almost immediately, enormous job: the
	// run must stop at MaxTime undrained rather than spin forever.
	short, _ := lifefn.NewUniform(3)
	factory := func() Policy { return &FixedChunkPolicy{Chunk: 2} }
	workers := []Worker{{
		ID:            0,
		Owner:         LifeOwner{Life: short},
		BusySampler:   func(r *rng.Source) float64 { return 1 },
		PolicyFactory: factory,
	}}
	pool, _ := NewUniformTasks(100000, 1)
	res, err := RunFarm(FarmConfig{Workers: workers, Overhead: 1, Seed: 1, MaxTime: 500}, pool)
	if err != nil {
		t.Fatal(err)
	}
	if res.Drained {
		t.Error("impossible job reported drained")
	}
	if res.Makespan > 500+1e-9 {
		t.Errorf("makespan %g exceeds MaxTime", res.Makespan)
	}
}

func TestFarmGuidelineBeatsNaiveChunking(t *testing.T) {
	// End-to-end shape check: on identical workloads and owner
	// behaviour, the guideline policy should waste less borrowed time
	// than all-at-once chunking.
	l := farmLife(t, 200)
	c := 2.0
	run := func(factory func() Policy, seed uint64) FarmResult {
		workers := make([]Worker, 3)
		for i := range workers {
			workers[i] = Worker{
				ID:            i,
				Owner:         LifeOwner{Life: l},
				BusySampler:   func(r *rng.Source) float64 { return r.Uniform(10, 30) },
				PolicyFactory: factory,
			}
		}
		pool, _ := NewUniformTasks(800, 1)
		res, err := RunFarm(FarmConfig{Workers: workers, Overhead: c, Seed: seed, MaxTime: 1e6}, pool)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	guideline := run(guidelineFactory(t, l, c), 11)
	naive := run(func() Policy { return &FixedChunkPolicy{Chunk: 200} }, 11)
	if !guideline.Drained {
		t.Fatal("guideline farm failed to drain")
	}
	if naive.Drained && naive.Makespan < guideline.Makespan {
		t.Errorf("all-at-once chunking beat the guideline: %g < %g",
			naive.Makespan, guideline.Makespan)
	}
}

func TestFarmHeterogeneousSpeeds(t *testing.T) {
	// A 4x-faster worker must complete roughly 4x the task time of a
	// 1x worker under identical owner behaviour and policy.
	l := farmLife(t, 1000) // long lifespans: reclaim rarely interferes
	factory := func() Policy { return &FixedChunkPolicy{Chunk: 50} }
	workers := []Worker{
		{ID: 0, Owner: LifeOwner{Life: l}, PolicyFactory: factory, Speed: 1},
		{ID: 1, Owner: LifeOwner{Life: l}, PolicyFactory: factory, Speed: 4},
	}
	pool, _ := NewUniformTasks(2000, 1)
	res, err := RunFarm(FarmConfig{Workers: workers, Overhead: 1, Seed: 3, MaxTime: 1e6}, pool)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Drained {
		t.Fatal("pool not drained")
	}
	slow := res.PerWorker[0].CommittedWork
	fast := res.PerWorker[1].CommittedWork
	if fast < 2.5*slow {
		t.Errorf("4x worker committed %g vs 1x worker %g — speed not honored", fast, slow)
	}
}

func TestFarmRejectsBadConfig(t *testing.T) {
	pool, _ := NewUniformTasks(1, 1)
	if _, err := RunFarm(FarmConfig{}, pool); err == nil {
		t.Error("empty worker list accepted")
	}
	if _, err := RunFarm(FarmConfig{Workers: []Worker{{}}, Overhead: -1}, pool); err == nil {
		t.Error("negative overhead accepted")
	}
}

func TestOwnerStrings(t *testing.T) {
	u, _ := lifefn.NewUniform(10)
	if (LifeOwner{Life: u}).String() == "" {
		t.Error("empty life-owner string")
	}
	so := SessionOwner{AbsenceSampler: func(r *rng.Source) float64 { return 1 }}
	if so.String() != "session-owner" {
		t.Error("default session-owner string")
	}
	named := SessionOwner{Name: "alice", AbsenceSampler: so.AbsenceSampler}
	if named.String() != "alice" {
		t.Error("named session-owner string")
	}
	src := rng.New(1)
	if so.ReclaimAfter(src) != 1 {
		t.Error("session owner sampling")
	}
}

func TestLifeOwnerSamplesWithinSupport(t *testing.T) {
	u, _ := lifefn.NewUniform(40)
	o := LifeOwner{Life: u}
	src := rng.New(9)
	for i := 0; i < 1000; i++ {
		r := o.ReclaimAfter(src)
		if r < 0 || r > 40 {
			t.Fatalf("reclaim %g outside [0, 40]", r)
		}
	}
}

var _ = sched.Schedule{} // keep sched import for helper clarity

func TestFarmTightPeriodsClampedBudget(t *testing.T) {
	// Periods barely above the overhead leave exactly t ⊖ c = 0.25 of
	// compute per dispatch, so the farm must still drain the pool one
	// task at a time without ever offering the pool a negative budget.
	l := farmLife(t, 200)
	c := 1.0
	workers := []Worker{{
		ID:            0,
		Owner:         LifeOwner{Life: l},
		BusySampler:   func(r *rng.Source) float64 { return r.Uniform(5, 20) },
		PolicyFactory: func() Policy { return tightPolicy{t: c + 0.25} },
	}}
	pool, err := NewUniformTasks(8, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunFarm(FarmConfig{Workers: workers, Overhead: c, Seed: 7, MaxTime: 1e6}, pool)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Drained {
		t.Fatalf("pool not drained: %d tasks left", pool.Remaining())
	}
	if res.TasksCompleted != 8 {
		t.Errorf("completed %d tasks, want 8", res.TasksCompleted)
	}
	if math.Abs(res.CommittedWork-2) > 1e-9 {
		t.Errorf("committed work = %g, want 2", res.CommittedWork)
	}
}
