package nowsim

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/sched"
)

// Task is one indivisible unit of a data-parallel computation. Its
// duration is known perfectly (a model assumption) and includes the
// marginal cost of shipping its input and output, so the per-period
// overhead c stays independent of bundle sizes.
type Task struct {
	ID       int
	Duration float64
}

// TaskPool holds the outstanding tasks of a data-parallel job. Tasks
// whose period is interrupted return to the pool (their results were
// destroyed) and will be re-dispatched. The zero value is an empty
// pool.
type TaskPool struct {
	queue []Task
	total float64
	done  []Task
}

// NewUniformTasks returns a pool of n tasks of identical duration d.
func NewUniformTasks(n int, d float64) (*TaskPool, error) {
	if n < 0 || d <= 0 {
		return nil, fmt.Errorf("nowsim: invalid task pool (n=%d, d=%g)", n, d)
	}
	p := &TaskPool{}
	for i := 0; i < n; i++ {
		p.Push(Task{ID: i, Duration: d})
	}
	return p, nil
}

// NewRandomTasks returns a pool of n tasks with durations drawn
// uniformly from [lo, hi) using src.
func NewRandomTasks(n int, lo, hi float64, src *rng.Source) (*TaskPool, error) {
	if n < 0 || !(lo > 0) || !(hi >= lo) {
		return nil, fmt.Errorf("nowsim: invalid random task pool (n=%d, [%g, %g))", n, lo, hi)
	}
	p := &TaskPool{}
	for i := 0; i < n; i++ {
		p.Push(Task{ID: i, Duration: src.Uniform(lo, hi)})
	}
	return p, nil
}

// Push enqueues a task.
func (p *TaskPool) Push(t Task) {
	p.queue = append(p.queue, t)
	p.total += t.Duration
}

// Remaining returns the number of outstanding tasks.
func (p *TaskPool) Remaining() int { return len(p.queue) }

// RemainingWork returns the total duration of outstanding tasks.
func (p *TaskPool) RemainingWork() float64 { return p.total }

// Completed returns the tasks committed so far.
func (p *TaskPool) Completed() []Task { return p.done }

// CompletedWork returns the total duration of committed tasks.
func (p *TaskPool) CompletedWork() float64 {
	w := 0.0
	for _, t := range p.done {
		w += t.Duration
	}
	return w
}

// TakeBundle removes tasks from the front of the queue whose durations
// fit within budget and returns them with their total duration. Tasks
// are indivisible: the first task that does not fit stays queued, and
// packing stops there (FIFO semantics keep the simulation deterministic
// and fair). An empty bundle means no queued task fits.
func (p *TaskPool) TakeBundle(budget float64) ([]Task, float64) {
	var bundle []Task
	used := 0.0
	for len(p.queue) > 0 {
		t := p.queue[0]
		if used+t.Duration > budget+1e-12 {
			break
		}
		bundle = append(bundle, t)
		used += t.Duration
		p.queue = p.queue[1:]
		p.total -= t.Duration
	}
	return bundle, used
}

// Commit records a bundle as successfully completed.
func (p *TaskPool) Commit(bundle []Task) {
	p.done = append(p.done, bundle...)
}

// Clone returns an independent copy of the pool's outstanding queue
// (completed-task history is not copied). Monte-Carlo experiments use
// it to replay the same workload across replications without paying
// workload generation each time.
func (p *TaskPool) Clone() *TaskPool {
	return &TaskPool{
		queue: append([]Task(nil), p.queue...),
		total: p.total,
	}
}

// Requeue returns a lost bundle to the front of the queue: its results
// were destroyed with the interrupted period and the tasks must run
// again.
func (p *TaskPool) Requeue(bundle []Task) {
	if len(bundle) == 0 {
		return
	}
	p.queue = append(append([]Task(nil), bundle...), p.queue...)
	for _, t := range bundle {
		p.total += t.Duration
	}
}

// TaskEpisodeResult is the outcome of a task-level episode.
type TaskEpisodeResult struct {
	EpisodeResult
	// TasksCompleted counts tasks whose results were committed.
	TasksCompleted int
	// TasksLost counts task executions destroyed by reclamation
	// (the tasks themselves return to the pool).
	TasksLost int
	// Slack is the dispatched-but-unfilled work capacity: period work
	// budgets that indivisible tasks could not pack exactly.
	Slack float64
}

// TaskEpisodeOptions tunes task-level episode execution.
type TaskEpisodeOptions struct {
	// BestFitWindow enables best-fit-decreasing bundle packing over a
	// lookahead window of the queue: positive values bound the window,
	// negative values let the pool size it automatically from the
	// budget, and 0 keeps plain FIFO packing.
	BestFitWindow int
}

// RunTaskEpisode plays one episode like RunEpisode but dispatches real
// indivisible tasks from pool: each period of length t carries a bundle
// packing at most t-c task time. Periods whose bundle would be empty
// are not dispatched (the episode ends voluntarily: no work fits). Lost
// bundles are re-enqueued.
func RunTaskEpisode(policy Policy, pool *TaskPool, c, reclaim float64) TaskEpisodeResult {
	return RunTaskEpisodeOpt(policy, pool, c, reclaim, TaskEpisodeOptions{})
}

// RunTaskEpisodeOpt is RunTaskEpisode with packing options.
func RunTaskEpisodeOpt(policy Policy, pool *TaskPool, c, reclaim float64, opt TaskEpisodeOptions) TaskEpisodeResult {
	if c < 0 {
		panic(fmt.Sprintf("nowsim: negative overhead %g", c))
	}
	policy.Reset()
	var (
		eng   Engine
		res   TaskEpisodeResult
		end   bool
		owner Handle
	)
	ownerBack := func() {
		end = true
		res.Reclaimed = true
		res.Duration = eng.Now()
	}
	if reclaim >= 0 && reclaim < 1e300 {
		owner = eng.At(reclaim, ownerBack)
	}
	finish := func() {
		end = true
		res.Duration = eng.Now()
		owner.Cancel()
	}
	var dispatch func()
	dispatch = func() {
		if end {
			return
		}
		t, ok := policy.NextPeriod(eng.Now())
		if !ok || t <= c {
			finish()
			return
		}
		var (
			bundle []Task
			used   float64
		)
		budget := sched.PositiveSub(t, c)
		switch {
		case opt.BestFitWindow > 0:
			bundle, used = pool.TakeBundleBestFit(budget, opt.BestFitWindow)
		case opt.BestFitWindow < 0:
			bundle, used = pool.TakeBundleBestFit(budget, 0) // auto window
		default:
			bundle, used = pool.TakeBundle(budget)
		}
		if len(bundle) == 0 {
			finish()
			return
		}
		res.PeriodsDispatched++
		res.Slack += budget - used
		// The period occupies the full scheduled length t (the
		// coordinator reserved that window) even if the bundle packs
		// less than t-c of task time.
		periodEnd := eng.Now() + t
		if periodEnd < reclaim {
			eng.At(periodEnd, func() {
				if end {
					return
				}
				res.PeriodsCommitted++
				res.Work += used
				res.Overhead += c
				res.TasksCompleted += len(bundle)
				pool.Commit(bundle)
				dispatch()
			})
			return
		}
		res.Lost += used
		res.TasksLost += len(bundle)
		pool.Requeue(bundle)
	}
	dispatch()
	eng.RunAll()
	if !res.Reclaimed && res.Duration == 0 {
		res.Duration = eng.Now()
	}
	return res
}
