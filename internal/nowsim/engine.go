// Package nowsim is a discrete-event simulator of cycle-stealing in a
// network of workstations — the experimental substrate the paper's model
// abstracts. It provides:
//
//   - an event engine (heap-ordered, deterministic tie-breaking);
//   - owner models that reclaim workstations at random times whose
//     survival function is a lifefn.Life (or a recorded trace);
//   - episode execution under pluggable chunking policies, with the
//     paper's draconian semantics: a period interrupted by the owner's
//     return loses all its work, and the episode ends;
//   - task-level data parallelism: indivisible tasks of known durations
//     packed into period-sized bundles, with lost bundles re-enqueued;
//   - a Monte-Carlo harness whose mean committed work converges to the
//     analytic E(S; p) of equation (2.1) — the model-validation
//     experiment (E6);
//   - a multi-workstation farm in which a coordinator steals cycles
//     from many owners concurrently (the data-parallel workload the
//     paper's introduction motivates).
package nowsim

import (
	"container/heap"
	"math"
)

// Action is a scheduled event body. It runs when the simulation clock
// reaches its event's time.
type Action func()

type event struct {
	at  float64
	seq uint64 // FIFO tie-break for simultaneous events
	fn  Action
	// canceled events stay in the heap but do not fire.
	canceled bool
	// gen counts recycles: a Handle cancels only the incarnation it was
	// issued for, so a stale handle to a reused event is a no-op.
	gen uint64
	// next links the engine's free list of fired events.
	next *event
}

// Handle cancels a scheduled event.
type Handle struct {
	ev  *event
	gen uint64
}

// Cancel prevents the event from firing. Canceling an already-fired or
// already-canceled event is a no-op, even after the engine has recycled
// the event for a later scheduling.
func (h Handle) Cancel() {
	if h.ev != nil && h.ev.gen == h.gen {
		h.ev.canceled = true
	}
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at < q[j].at {
		return true
	}
	if q[j].at < q[i].at {
		return false
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}

// Engine is a sequential discrete-event simulation engine. The zero
// value is ready to use with the clock at 0. Fired and canceled events
// are recycled through a free list, so an episode loop that keeps one
// period in flight schedules its thousands of events through a single
// allocation.
type Engine struct {
	queue eventQueue
	now   float64
	seq   uint64
	fired uint64
	// free heads the recycle list of fired/drained events.
	free *event
	// boot backs the queue's first entries, so simulations that never
	// hold more than a handful of pending events never allocate the
	// heap's backing array either.
	boot [8]*event
}

// alloc takes an event from the free list, falling back to the heap.
func (e *Engine) alloc() *event {
	if ev := e.free; ev != nil {
		e.free = ev.next
		ev.next = nil
		return ev
	}
	return &event{} //lint:allow hotalloc free-list miss: only the high-water mark of in-flight events allocates
}

// recycle returns a fired or drained-canceled event to the free list,
// invalidating outstanding handles via the generation counter.
func (e *Engine) recycle(ev *event) {
	ev.fn = nil
	ev.canceled = false
	ev.gen++
	ev.next = e.free
	e.free = ev
}

// Now returns the current simulation time.
func (e *Engine) Now() float64 { return e.now }

// Fired returns the number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events still queued (including
// canceled ones not yet drained).
func (e *Engine) Pending() int { return len(e.queue) }

// At schedules fn at absolute time t (>= Now) and returns a cancel
// handle. Scheduling in the past panics: that is always a simulation
// bug.
func (e *Engine) At(t float64, fn Action) Handle {
	if t < e.now {
		panic("nowsim: scheduling event in the past")
	}
	if e.queue == nil {
		e.queue = e.boot[:0]
	}
	ev := e.alloc()
	ev.at, ev.seq, ev.fn = t, e.seq, fn
	e.seq++
	heap.Push(&e.queue, ev)
	return Handle{ev, ev.gen}
}

// After schedules fn delay time units from now.
func (e *Engine) After(delay float64, fn Action) Handle {
	if delay < 0 {
		panic("nowsim: negative delay")
	}
	return e.At(e.now+delay, fn)
}

// Step fires the next event. It returns false when the queue is empty.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*event)
		if ev.canceled {
			e.recycle(ev)
			continue
		}
		e.now = ev.at
		e.fired++
		fn := ev.fn
		// Recycle before firing so the action's own scheduling reuses
		// this event; its handle is already invalidated.
		e.recycle(ev)
		fn()
		return true
	}
	return false
}

// Run fires events until the queue empties or the clock would pass
// until (events at exactly until still fire). Pass +Inf to drain.
func (e *Engine) Run(until float64) {
	for len(e.queue) > 0 {
		next := e.queue[0]
		if next.canceled {
			heap.Pop(&e.queue)
			e.recycle(next)
			continue
		}
		if next.at > until {
			return
		}
		e.Step()
	}
}

// RunAll drains the queue completely.
func (e *Engine) RunAll() { e.Run(math.Inf(1)) }
