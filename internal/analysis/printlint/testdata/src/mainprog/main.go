// Package main is a command: printing is its job, so nothing here is a
// finding.
package main

import "fmt"

func main() {
	fmt.Println("commands may print")
}
