package lib

import "fmt"

// Test files are exempt: Example tests print by design.
func printInTest() { fmt.Println("examples print") }
