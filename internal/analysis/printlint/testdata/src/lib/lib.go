package lib

import (
	"fmt"
	"io"
	"log"
	"os"
	"strings"
)

func report(w io.Writer) {
	fmt.Println("hi")              // want "fmt.Println writes to stdout"
	fmt.Printf("x=%d\n", 1)        // want "fmt.Printf writes to stdout"
	fmt.Fprintf(os.Stderr, "no\n") // want "fmt.Fprintf to os.Stderr"
	fmt.Fprintln(os.Stdout, "no")  // want "fmt.Fprintln to os.Stdout"
	log.Printf("bad")              // want "log.Printf uses the global logger"
	println("builtin")             // want "builtin println writes to stderr"

	fmt.Fprintf(w, "fine\n") // caller-supplied writer: non-finding
	var b strings.Builder
	fmt.Fprint(&b, "fine") // in-memory writer: non-finding
	l := log.New(w, "", 0) // instance logger: non-finding
	l.Printf("fine")       // non-finding

	//lint:allow printlint progress note demanded by the operator
	fmt.Println("allowed")
}
