package printlint_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/printlint"
)

func TestPrintlint(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), printlint.Analyzer, "lib", "mainprog")
}
