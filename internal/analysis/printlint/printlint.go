// Package printlint keeps library packages silent: only commands and
// examples (package main) may write to the process streams. A library
// that prints garbles CLI output, breaks byte-identical trace
// comparisons, and cannot be captured by callers; results must travel
// through return values, an io.Writer parameter, or the obs layer.
//
// In every non-main package, excluding _test.go files (Example tests
// print by design), the analyzer flags:
//   - fmt.Print, fmt.Printf, fmt.Println (implicit os.Stdout);
//   - fmt.Fprint* whose first argument is os.Stdout or os.Stderr;
//   - any call into the log package's package-level API (the global
//     logger writes to os.Stderr);
//   - the print and println builtins.
package printlint

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "printlint",
	Doc:  "forbid stdout/stderr writes (fmt.Print*, log.*, println) in library packages",
	Run:  run,
}

var fmtPrint = map[string]bool{
	"fmt.Print":   true,
	"fmt.Printf":  true,
	"fmt.Println": true,
}

var fmtFprint = map[string]bool{
	"fmt.Fprint":   true,
	"fmt.Fprintf":  true,
	"fmt.Fprintln": true,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Name() == "main" {
		return nil
	}
	for _, f := range pass.Files {
		name := pass.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch fun := ast.Unparen(call.Fun).(type) {
			case *ast.Ident:
				if b, ok := pass.TypesInfo.Uses[fun].(*types.Builtin); ok && (b.Name() == "print" || b.Name() == "println") {
					pass.ReportRangef(call, "builtin %s writes to stderr; library packages must stay silent", b.Name())
				}
			case *ast.SelectorExpr:
				fn, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
				if !ok || fn.Pkg() == nil {
					return true
				}
				full := fn.FullName()
				switch {
				case fmtPrint[full]:
					pass.ReportRangef(call, "%s writes to stdout; library packages must return values or take an io.Writer", full)
				case fmtFprint[full] && len(call.Args) > 0 && isProcessStream(pass, call.Args[0]):
					pass.ReportRangef(call, "%s to %s; library packages must not write to the process streams", full, types.ExprString(call.Args[0]))
				case fn.Pkg().Path() == "log" && isGlobalLogCall(fn):
					pass.ReportRangef(call, "%s uses the global logger (stderr); library packages must stay silent", full)
				}
			}
			return true
		})
	}
	return nil
}

// isGlobalLogCall reports whether fn is a package-level log function
// that writes through the global logger. log.New and methods on an
// instance *log.Logger are fine: their writer is caller-supplied.
func isGlobalLogCall(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return false
	}
	return fn.Name() != "New"
}

// isProcessStream reports whether e denotes os.Stdout or os.Stderr.
func isProcessStream(pass *analysis.Pass, e ast.Expr) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	v, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Var)
	if !ok || v.Pkg() == nil || v.Pkg().Path() != "os" {
		return false
	}
	return v.Name() == "Stdout" || v.Name() == "Stderr"
}
