package flow_test

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/flow"
)

// probe runs the flow engine over src (one file, package p) inside a
// session and returns the resulting Info.
func probe(t *testing.T, sess *analysis.Session, path, src string, imp types.Importer) (*flow.Info, *types.Package) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, path+".go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(path, fset, []*ast.File{file}, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	var got *flow.Info
	an := &analysis.Analyzer{
		Name: "probe",
		Doc:  "captures flow info",
		Run: func(pass *analysis.Pass) error {
			in, err := flow.Of(pass)
			if err != nil {
				return err
			}
			got = in
			return nil
		},
	}
	if _, err := sess.Run(fset, []*ast.File{file}, pkg, info, []*analysis.Analyzer{an}); err != nil {
		t.Fatalf("run: %v", err)
	}
	if got == nil {
		t.Fatal("probe analyzer did not run")
	}
	return got, pkg
}

func summaryOf(t *testing.T, in *flow.Info, pkg *types.Package, name string) flow.FuncSummary {
	t.Helper()
	obj := pkg.Scope().Lookup(name)
	fn, ok := obj.(*types.Func)
	if !ok {
		t.Fatalf("no function %q in %s", name, pkg.Path())
	}
	sum, ok := in.SummaryOf(fn)
	if !ok {
		t.Fatalf("no summary for %q", name)
	}
	return sum
}

const engineSrc = `package p

func reader(x int) int { return x + 1 }

func ret(x int) int { return x }

func sub(t, c float64) float64 { return t - c }

func wrapSub(t, c float64) float64 { return sub(t, c) }

func swapSub(t, c float64) float64 { return sub(c, t) }

func setv(p *int) { *p = 1 }

func spawnWrite(p *int) {
	go func() { *p = 2 }()
}

func goCall(p *int) {
	go setv(p)
}

func spawnRead(p *int) {
	go func() { _ = *p }()
}

func viaWrapper(p *int) {
	spawnWrite(p)
}

func send(ch chan int, x int) { ch <- x }

func store(x int) {
	var s struct{ v int }
	s.v = x
	_ = s
}

var sink int

func globalStore(x int) { sink = x }

func dyn(f func(int), x int) { f(x) }

func loops() {
	done := make(chan bool)
	for i := 0; i < 4; i++ {
		go func() { done <- true }()
	}
	for i := 0; i < 4; i++ {
		<-done
	}
}
`

func TestSummaries(t *testing.T) {
	in, pkg := probe(t, analysis.NewSession(), "p", engineSrc, nil)

	check := func(fn string, i int, want flow.ParamFlow) {
		t.Helper()
		got := summaryOf(t, in, pkg, fn).Params
		if i >= len(got) {
			t.Fatalf("%s: param %d out of range (%d params)", fn, i, len(got))
		}
		if got[i] != want {
			t.Errorf("%s param %d = %v, want %v", fn, i, got[i], want)
		}
	}

	check("reader", 0, flow.UsedDirect)
	check("ret", 0, flow.UsedDirect|flow.FlowsToReturn)
	check("setv", 0, flow.UsedDirect|flow.WrittenDirect)
	check("spawnWrite", 0, flow.ReachesGoroutine|flow.WrittenInGoroutine)
	check("goCall", 0, flow.ReachesGoroutine|flow.WrittenInGoroutine)
	check("spawnRead", 0, flow.ReachesGoroutine)
	// Wrapper chains propagate through the fixpoint.
	check("viaWrapper", 0, flow.ReachesGoroutine|flow.WrittenInGoroutine)
	check("send", 1, flow.UsedDirect|flow.SentToChannel)
	check("store", 0, flow.UsedDirect|flow.StoredToHeap)
	check("globalStore", 0, flow.UsedDirect|flow.StoredToHeap)
	// A function-value call is unresolvable: the argument escapes.
	check("dyn", 1, flow.UsedDirect|flow.EscapesUnknown)
}

func TestRawSubs(t *testing.T) {
	in, pkg := probe(t, analysis.NewSession(), "p", engineSrc, nil)

	for _, tc := range []struct {
		fn   string
		want flow.RawSub
	}{
		{"sub", flow.RawSub{X: 0, Y: 1}},
		{"wrapSub", flow.RawSub{X: 0, Y: 1}},
		{"swapSub", flow.RawSub{X: 1, Y: 0}},
	} {
		subs := summaryOf(t, in, pkg, tc.fn).RawSubs
		if len(subs) != 1 || subs[0] != tc.want {
			t.Errorf("%s RawSubs = %v, want [%v]", tc.fn, subs, tc.want)
		}
	}
	if subs := summaryOf(t, in, pkg, "reader").RawSubs; len(subs) != 0 {
		t.Errorf("reader RawSubs = %v, want none", subs)
	}
}

func TestSpawnsAndLoopVars(t *testing.T) {
	in, _ := probe(t, analysis.NewSession(), "p", engineSrc, nil)
	var fi *flow.FuncInfo
	for _, f := range in.Funcs {
		if f.Obj.Name() == "loops" {
			fi = f
		}
	}
	if fi == nil {
		t.Fatal("no FuncInfo for loops")
	}
	if len(fi.Spawns) != 1 || !fi.Spawns[0].InLoop {
		t.Fatalf("loops: want one in-loop spawn, got %+v", fi.Spawns)
	}
	var loopI *types.Var
	// Find the first loop's i via its position inside the function.
	for id, obj := range in.TypesInfo.Defs {
		v, ok := obj.(*types.Var)
		if ok && id.Name == "i" && v.Pos() > fi.Decl.Pos() && v.Pos() < fi.Decl.End() {
			loopI = v
			break
		}
	}
	if loopI == nil {
		t.Fatal("loop variable i not found")
	}
	if !fi.IsLoopVar(loopI) {
		t.Error("IsLoopVar(i) = false, want true")
	}
	// The receive in the drain loop is a barrier after the spawn.
	if !fi.BarrierBetween(fi.Spawns[0].Go.Pos(), fi.Decl.End()) {
		t.Error("no barrier found between spawn and function end")
	}
}

// importerFor resolves one pre-checked package and delegates the rest.
type importerFor struct {
	path string
	pkg  *types.Package
}

func (im importerFor) Import(path string) (*types.Package, error) {
	if path == im.path {
		return im.pkg, nil
	}
	return importer.Default().Import(path)
}

func TestCrossPackageFacts(t *testing.T) {
	sess := analysis.NewSession()
	inA, pkgA := probe(t, sess, "fixa", `package fixa

func Sub(t, c float64) float64 { return t - c }

func Pump(p *int) { go func() { *p = 1 }() }
`, nil)
	if _, ok := inA.SummaryOf(pkgA.Scope().Lookup("Sub").(*types.Func)); !ok {
		t.Fatal("fixa.Sub has no local summary")
	}

	inB, pkgB := probe(t, sess, "fixb", `package fixb

import "fixa"

func Wrap(t, c float64) float64 { return fixa.Sub(t, c) }

func Spawn(p *int) { fixa.Pump(p) }
`, importerFor{"fixa", pkgA})

	wrap := summaryOf(t, inB, pkgB, "Wrap")
	if len(wrap.RawSubs) != 1 || wrap.RawSubs[0] != (flow.RawSub{X: 0, Y: 1}) {
		t.Errorf("Wrap RawSubs = %v, want [{0 1}]", wrap.RawSubs)
	}
	spawn := summaryOf(t, inB, pkgB, "Spawn")
	want := flow.ReachesGoroutine | flow.WrittenInGoroutine
	if spawn.Params[0] != want {
		t.Errorf("Spawn param 0 = %v, want %v", spawn.Params[0], want)
	}

	// Without the session, the callee is opaque: conservative escape.
	inC, pkgC := probe(t, analysis.NewSession(), "fixc", `package fixc

import "fixa"

func Spawn(p *int) { fixa.Pump(p) }
`, importerFor{"fixa", pkgA})
	sum := summaryOf(t, inC, pkgC, "Spawn")
	if sum.Params[0]&flow.EscapesUnknown == 0 {
		t.Errorf("sessionless Spawn param 0 = %v, want EscapesUnknown set", sum.Params[0])
	}
}

func TestSummaryEncodeRoundTrip(t *testing.T) {
	s := flow.Summaries{
		"p.f": {Params: []flow.ParamFlow{flow.UsedDirect | flow.ReachesGoroutine}},
		"p.g": {RawSubs: []flow.RawSub{{X: 0, Y: 1}}},
	}
	data, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	data2, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Error("Encode is not deterministic")
	}
	back, err := flow.DecodeSummaries(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || back["p.g"].RawSubs[0] != (flow.RawSub{X: 0, Y: 1}) {
		t.Errorf("round trip mismatch: %+v", back)
	}
	if empty, err := flow.DecodeSummaries(nil); err != nil || len(empty) != 0 {
		t.Errorf("DecodeSummaries(nil) = %v, %v", empty, err)
	}
}
