package flow

import (
	"encoding/json"
	"fmt"
	"sort"
)

// FactsNamespace keys the flow engine's packed summaries in an
// analysis.Session (and therefore in vetx facts files).
const FactsNamespace = "flow"

// ParamFlow is a bitmask describing what a function does with one of
// its parameters (receiver first, then declared parameters). The flags
// describe caller-visible behavior, so "written" means a mutation the
// caller can observe — a store through a pointer, slice, or map — not a
// rebinding of the parameter variable itself.
type ParamFlow uint16

const (
	// UsedDirect: the parameter is read (or its methods called) in the
	// callee's own goroutine.
	UsedDirect ParamFlow = 1 << iota
	// WrittenDirect: the callee mutates the parameter's referent in its
	// own goroutine.
	WrittenDirect
	// ReachesGoroutine: the parameter is referenced inside a goroutine
	// the callee (transitively) spawns.
	ReachesGoroutine
	// WrittenInGoroutine: the parameter's referent is mutated inside a
	// goroutine the callee (transitively) spawns.
	WrittenInGoroutine
	// FlowsToReturn: the parameter value is returned (possibly through
	// a wrapper chain).
	FlowsToReturn
	// SentToChannel: the parameter value is sent on a channel.
	SentToChannel
	// StoredToHeap: the parameter value is stored into a struct field,
	// map, slice element, or package variable — beyond what local
	// tracking can follow.
	StoredToHeap
	// EscapesUnknown: the parameter is passed to a call the engine
	// cannot resolve (interface method, function value); its fate there
	// is unknown.
	EscapesUnknown
)

var flagNames = []struct {
	bit  ParamFlow
	name string
}{
	{UsedDirect, "used"},
	{WrittenDirect, "written"},
	{ReachesGoroutine, "reaches-goroutine"},
	{WrittenInGoroutine, "written-in-goroutine"},
	{FlowsToReturn, "returned"},
	{SentToChannel, "sent-to-channel"},
	{StoredToHeap, "stored-to-heap"},
	{EscapesUnknown, "escapes-unknown"},
}

func (f ParamFlow) String() string {
	if f == 0 {
		return "none"
	}
	s := ""
	for _, fn := range flagNames {
		if f&fn.bit != 0 {
			if s != "" {
				s += "|"
			}
			s += fn.name
		}
	}
	return s
}

// A RawSub records that a function's return value is the raw (sign
// preserving) difference params[X] - params[Y], directly or through a
// chain of wrappers. The nonnegwork analyzer uses it to see through
// helpers that hide a `t - c` from the call site.
type RawSub struct {
	X, Y int
}

// A FuncSummary is one function's interprocedural summary. Params is
// indexed receiver-first; for variadic functions the final entry
// covers every trailing argument. Joins reports that every goroutine
// the function (transitively) spawns is joined — a barrier follows
// each spawn, and every callee contributing goroutine flow joins too —
// so the function is synchronous from the caller's point of view even
// when parameters carry goroutine flags.
type FuncSummary struct {
	Params  []ParamFlow `json:"params,omitempty"`
	RawSubs []RawSub    `json:"rawsubs,omitempty"`
	Joins   bool        `json:"joins,omitempty"`
}

func (s FuncSummary) equal(t FuncSummary) bool {
	if s.Joins != t.Joins || len(s.Params) != len(t.Params) || len(s.RawSubs) != len(t.RawSubs) {
		return false
	}
	for i := range s.Params {
		if s.Params[i] != t.Params[i] {
			return false
		}
	}
	for i := range s.RawSubs {
		if s.RawSubs[i] != t.RawSubs[i] {
			return false
		}
	}
	return true
}

// Param returns the flow of normalized argument index i, collapsing
// variadic overflow onto the final parameter.
func (s FuncSummary) Param(i int) ParamFlow {
	if len(s.Params) == 0 {
		return 0
	}
	if i >= len(s.Params) {
		i = len(s.Params) - 1
	}
	if i < 0 {
		return 0
	}
	return s.Params[i]
}

// Summaries maps a function's full name (types.Func.FullName: package
// qualified, "(*pkg.T).M" for methods) to its summary. Full names are
// stable across the source loader and go vet's export-data loader, so
// summaries computed in one process are valid in another.
type Summaries map[string]FuncSummary

// Encode packs summaries into the facts blob stored in an
// analysis.Session and serialized into vetx files. The encoding is
// deterministic (sorted keys) so identical analyses produce identical
// facts bytes.
func (s Summaries) Encode() ([]byte, error) {
	names := make([]string, 0, len(s))
	for name := range s {
		names = append(names, name)
	}
	sort.Strings(names)
	type entry struct {
		Name string      `json:"name"`
		Sum  FuncSummary `json:"sum"`
	}
	entries := make([]entry, 0, len(names))
	for _, name := range names {
		entries = append(entries, entry{name, s[name]})
	}
	return json.Marshal(entries)
}

// DecodeSummaries unpacks a facts blob produced by Encode. A nil or
// empty blob yields an empty map.
func DecodeSummaries(data []byte) (Summaries, error) {
	out := make(Summaries)
	if len(data) == 0 {
		return out, nil
	}
	var entries []struct {
		Name string      `json:"name"`
		Sum  FuncSummary `json:"sum"`
	}
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("flow: decoding summaries: %v", err)
	}
	for _, e := range entries {
		out[e.Name] = e.Sum
	}
	return out, nil
}
