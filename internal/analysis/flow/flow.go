// Package flow is the interprocedural dataflow engine under the
// cslint suite's goroutinecap, rngshare and nonnegwork analyzers. For
// each analyzed package it builds, per function: a type-aware static
// call graph (direct calls, package-qualified calls, and method calls
// resolved through go/types selections), the set of goroutine spawn
// sites with their captured variables, and a record of every use of
// every function-local variable classified by context (spawner vs
// spawned goroutine), access kind (read, caller-visible write, atomic,
// address-taken) and role (call argument, channel send, heap store,
// return). A fixpoint pass folds these into per-function value-flow
// summaries (FuncSummary) describing what a callee does with each
// parameter, so callers can reason through wrappers: a helper that
// hands its argument to a worker goroutine taints the caller's
// variable exactly as a literal `go` statement would.
//
// Summaries cross package boundaries as facts: after the fixpoint the
// package's summaries are exported into the run's analysis.Session
// under FactsNamespace, and lookups for imported functions consult the
// session (populated dependency-first by the standalone driver and the
// golden harness, or from vetx facts files under go vet — see
// internal/analysis/unit). With no session the engine degrades to
// conservative intra-package results.
//
// # Soundness caveats
//
// The engine is a linter's dataflow, not a verifier's: it tracks
// function-local variables and parameters only (struct fields, package
// variables and values threaded through channels are out of scope),
// resolves only static call targets (interface and function-value
// calls are recorded as EscapesUnknown), treats non-go function
// literals as running in the enclosing goroutine, and does not model
// mutation hidden behind pointer-receiver method calls. Analyzers
// document which side of unsoundness they choose per check.
package flow

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"

	"repro/internal/analysis"
)

// Info is the engine's view of one analyzed package.
type Info struct {
	Pkg       *types.Package
	Fset      *token.FileSet
	TypesInfo *types.Info
	Funcs     []*FuncInfo

	pass     *analysis.Pass
	byObj    map[*types.Func]*FuncInfo
	imported map[string]Summaries // decoded facts per import path
}

// FuncInfo is the engine's view of one declared function body.
type FuncInfo struct {
	Obj    *types.Func
	Decl   *ast.FuncDecl
	Params []*types.Var // receiver first, then declared parameters
	Spawns []*Spawn
	Calls  []*CallSite
	Uses   []*Use

	summary    FuncSummary
	paramIndex map[*types.Var]int
	aliases    map[*types.Var]*types.Var
	partitions map[*types.Var]Partition
	loopVars   map[*types.Var]bool
	barriers   []token.Pos // Wait / channel-receive positions outside spawns
	retSubs    [][2]*types.Var
	cmpPairs   [][2]*types.Var // operands of <, <=, >, >= comparisons
	retCalls   []*ast.CallExpr
	callByExpr map[*ast.CallExpr]*CallSite
}

// A Spawn is one `go` statement. Lit is the spawned function literal,
// nil for `go f(args)` on a named function (whose arguments escape via
// their CallSite instead).
type Spawn struct {
	Go     *ast.GoStmt
	Lit    *ast.FuncLit
	InLoop bool       // the statement sits inside a loop: it spawns repeatedly
	loops  []ast.Node // enclosing For/Range statements, outermost first
}

// A CallSite is one call expression with its resolved static callee
// (nil when dynamic: interface method, function value, builtin).
type CallSite struct {
	Call     *ast.CallExpr
	Callee   *types.Func
	Spawn    *Spawn // innermost spawned literal lexically containing the call
	GoDirect bool   // the call is itself the operand of a go statement
	InLoop   bool
	loops    []ast.Node
	method   bool // receiver occupies normalized argument 0
}

// InLoopFor reports whether the call repeats relative to v: some
// enclosing loop does not contain v's declaration, so one v instance
// sees multiple executions of the call. A variable declared inside the
// innermost loop is fresh each iteration and unaffected by it.
func (c *CallSite) InLoopFor(v *types.Var) bool { return loopsOutsideVar(c.loops, v) }

// InLoopFor is CallSite.InLoopFor for a spawn site: whether one
// instance of v is visible to multiple spawned goroutines.
func (s *Spawn) InLoopFor(v *types.Var) bool { return loopsOutsideVar(s.loops, v) }

func loopsOutsideVar(loops []ast.Node, v *types.Var) bool {
	for _, l := range loops {
		if !(l.Pos() <= v.Pos() && v.Pos() < l.End()) {
			return true
		}
	}
	return false
}

// ArgExpr returns the expression passed at normalized argument index i
// (receiver = 0 for method calls), or nil when out of range.
func (c *CallSite) ArgExpr(i int) ast.Expr {
	if c.method {
		if i == 0 {
			if sel, ok := c.Call.Fun.(*ast.SelectorExpr); ok {
				return sel.X
			}
			return nil
		}
		i--
	}
	if i < 0 || i >= len(c.Call.Args) {
		return nil
	}
	return c.Call.Args[i]
}

// A Partition marks a write that lands in Base[Index]: per-element
// access where the index is private to the writing goroutine (or
// iteration), the disjoint-slot idiom parallel reducers use.
type Partition struct {
	Base, Index *types.Var
}

// An ArgRef links a variable use to the call consuming it.
type ArgRef struct {
	Site   *CallSite
	Index  int // normalized: receiver first
	ByAddr bool
}

// A Use is one appearance of a tracked local variable or parameter.
type Use struct {
	Var  *types.Var // root variable after alias resolution
	Pos  token.Pos
	End  token.Pos
	Node ast.Node
	// Spawn is the innermost spawned literal containing the use; nil
	// means the function's own goroutine.
	Spawn *Spawn
	// Write is any mutating access; Through distinguishes stores into
	// the variable's referent (*p = v, p.f = v, p[i] = v) from
	// rebinding the variable itself. AddrTaken marks a bare &v whose
	// destination the engine cannot see.
	Write, Through, AddrTaken bool
	// Atomic marks accesses mediated by sync/atomic.
	Atomic bool
	// Part is set when the write goes through a per-goroutine or
	// per-iteration element of Var.
	Part *Partition
	// Arg links the use to the call it feeds, if any.
	Arg *ArgRef
	// Send, Stored, Returned classify escaping value flow.
	Send, Stored, Returned bool
}

const sharedKey = "flow"

// Of returns the flow Info for the pass's package, building it on
// first request and sharing it between the flow-based analyzers of the
// same run. Building also exports the package's summaries as session
// facts for packages analyzed later.
func Of(pass *analysis.Pass) (*Info, error) {
	v, err := pass.Shared(sharedKey, func() (interface{}, error) {
		return build(pass)
	})
	if err != nil {
		return nil, err
	}
	return v.(*Info), nil
}

func build(pass *analysis.Pass) (*Info, error) {
	in := &Info{
		Pkg:       pass.Pkg,
		Fset:      pass.Fset,
		TypesInfo: pass.TypesInfo,
		pass:      pass,
		byObj:     make(map[*types.Func]*FuncInfo),
		imported:  make(map[string]Summaries),
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			fi := in.collect(fd, obj)
			in.Funcs = append(in.Funcs, fi)
			in.byObj[origin(obj)] = fi
		}
	}
	// Fixpoint: summaries only accumulate bits, so recomputing until
	// stable terminates; the bound is a safety net, far above any real
	// call-chain depth.
	for iter := 0; iter < 64; iter++ {
		changed := false
		for _, fi := range in.Funcs {
			ns := in.summarize(fi)
			if !ns.equal(fi.summary) {
				fi.summary = ns
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	packed := make(Summaries, len(in.Funcs))
	for _, fi := range in.Funcs {
		packed[fi.Obj.FullName()] = fi.summary
	}
	data, err := packed.Encode()
	if err != nil {
		return nil, err
	}
	pass.ExportFacts(FactsNamespace, data)
	return in, nil
}

func origin(fn *types.Func) *types.Func {
	if o := fn.Origin(); o != nil {
		return o
	}
	return fn
}

// SummaryOf returns fn's value-flow summary: from this package's
// fixpoint for local functions, from session facts for imported ones.
// ok is false when the engine knows nothing (no body, no facts).
func (in *Info) SummaryOf(fn *types.Func) (FuncSummary, bool) {
	if fn == nil {
		return FuncSummary{}, false
	}
	fn = origin(fn)
	if fn.Pkg() == in.Pkg {
		if fi, ok := in.byObj[fn]; ok {
			return fi.summary, true
		}
		return FuncSummary{}, false
	}
	if fn.Pkg() == nil {
		return FuncSummary{}, false
	}
	path := fn.Pkg().Path()
	sums, ok := in.imported[path]
	if !ok {
		var err error
		sums, err = DecodeSummaries(in.pass.Facts(path, FactsNamespace))
		if err != nil {
			sums = Summaries{}
		}
		in.imported[path] = sums
	}
	s, ok := sums[fn.FullName()]
	return s, ok
}

// ArgFlow reports what the call does with its normalized argument i
// (receiver = 0 for method calls), composed with the call's own
// context: a callee that merely reads its parameter still yields
// ReachesGoroutine when the call happens inside a spawned goroutine or
// as a direct `go f(x)`. ok is false for dynamic or summary-less
// callees.
func (in *Info) ArgFlow(site *CallSite, i int) (ParamFlow, bool) {
	sum, ok := in.SummaryOf(site.Callee)
	if !ok {
		return 0, false
	}
	return liftFlow(site.Spawn != nil || site.GoDirect, sum.Param(i)), true
}

// liftFlow reinterprets a callee-relative flow from a call made inside
// a spawned goroutine: the callee's own-goroutine accesses happen in
// the spawned goroutine from the root caller's point of view.
func liftFlow(inGo bool, f ParamFlow) ParamFlow {
	if !inGo {
		return f
	}
	out := f &^ (UsedDirect | WrittenDirect)
	if f&(UsedDirect|ReachesGoroutine) != 0 {
		out |= ReachesGoroutine
	}
	if f&(WrittenDirect|WrittenInGoroutine) != 0 {
		out |= WrittenInGoroutine
	}
	return out
}

// BarrierBetween reports whether a synchronization point — a
// sync.WaitGroup.Wait call or a channel receive outside any spawned
// goroutine — sits strictly between lo and hi in this function.
func (f *FuncInfo) BarrierBetween(lo, hi token.Pos) bool {
	for _, p := range f.barriers {
		if lo < p && p < hi {
			return true
		}
	}
	return false
}

// IsLoopVar reports whether v is declared in the header of a for or
// range statement in this function.
func (f *FuncInfo) IsLoopVar(v *types.Var) bool { return f.loopVars[v] }

// ComparedPair reports whether the function contains an ordering
// comparison (<, <=, >, >=) between x and y in either order — the
// guard shape that makes a subsequent x-y subtraction clamped rather
// than raw.
func (f *FuncInfo) ComparedPair(x, y *types.Var) bool {
	if x == nil || y == nil {
		return false
	}
	x, y = f.rootVar(x), f.rootVar(y)
	for _, p := range f.cmpPairs {
		if (p[0] == x && p[1] == y) || (p[0] == y && p[1] == x) {
			return true
		}
	}
	return false
}

// Root resolves e to the local variable it names, chasing parentheses
// and single-assignment aliases; nil when e is not a tracked variable.
func (f *FuncInfo) Root(e ast.Expr, info *types.Info) *types.Var {
	e = ast.Unparen(e)
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	v, ok := info.Uses[id].(*types.Var)
	if !ok {
		v, ok = info.Defs[id].(*types.Var)
		if !ok {
			return nil
		}
	}
	return f.rootVar(v)
}

func (f *FuncInfo) rootVar(v *types.Var) *types.Var {
	for i := 0; i < 32; i++ {
		next, ok := f.aliases[v]
		if !ok || next == v {
			return v
		}
		v = next
	}
	return v
}

// HomeSpawn returns the innermost spawned literal whose body declares
// v, or nil when v belongs to the function's own goroutine. Uses of v
// from a different spawn than its home are cross-goroutine accesses.
func (f *FuncInfo) HomeSpawn(v *types.Var) *Spawn {
	var home *Spawn
	for _, s := range f.Spawns {
		if s.Lit != nil && s.Lit.Pos() <= v.Pos() && v.Pos() < s.Lit.End() {
			if home == nil || home.Lit.Pos() < s.Lit.Pos() {
				home = s
			}
		}
	}
	return home
}

// Summary returns the function's fixpoint summary.
func (f *FuncInfo) Summary() FuncSummary { return f.summary }

// UsesOf returns every recorded use of root variable v, in source
// order.
func (f *FuncInfo) UsesOf(v *types.Var) []*Use {
	var out []*Use
	for _, u := range f.Uses {
		if u.Var == v {
			out = append(out, u)
		}
	}
	return out
}

// refLike reports whether writes through a value of type t are visible
// to other holders of the same value.
func refLike(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Interface, *types.Signature:
		return true
	}
	return false
}

type writeInfo struct {
	through bool
	part    *Partition
}

// collect performs the single structural walk over one function body.
func (in *Info) collect(fd *ast.FuncDecl, obj *types.Func) *FuncInfo {
	fi := &FuncInfo{
		Obj:        obj,
		Decl:       fd,
		paramIndex: make(map[*types.Var]int),
		aliases:    make(map[*types.Var]*types.Var),
		partitions: make(map[*types.Var]Partition),
		loopVars:   make(map[*types.Var]bool),
		callByExpr: make(map[*ast.CallExpr]*CallSite),
	}
	sig := obj.Type().(*types.Signature)
	if r := sig.Recv(); r != nil {
		fi.Params = append(fi.Params, r)
	}
	for i := 0; i < sig.Params().Len(); i++ {
		fi.Params = append(fi.Params, sig.Params().At(i))
	}
	for i, p := range fi.Params {
		fi.paramIndex[p] = i
	}

	info := in.TypesInfo
	// Pre-pass: count plain rebindings per variable. A variable bound
	// exactly once can serve as an alias root; one rebound later cannot
	// (its identity is flow-dependent and the engine is flow-insensitive
	// for aliases).
	bindCount := make(map[types.Object]int)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					if o := info.Defs[id]; o != nil {
						bindCount[o]++
					} else if o := info.Uses[id]; o != nil {
						bindCount[o]++
					}
				}
			}
		case *ast.IncDecStmt:
			if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
				if o := info.Uses[id]; o != nil {
					bindCount[o]++
				}
			}
		}
		return true
	})

	spawnedLits := make(map[*ast.FuncLit]*Spawn)
	pendingWrites := make(map[*ast.Ident]writeInfo)
	pendingArgs := make(map[*ast.Ident]*ArgRef)
	pendingAtomic := make(map[*ast.Ident]bool)

	var stack []ast.Node
	currentSpawn := func() *Spawn {
		for i := len(stack) - 1; i >= 0; i-- {
			if lit, ok := stack[i].(*ast.FuncLit); ok {
				if s, ok := spawnedLits[lit]; ok {
					return s
				}
			}
		}
		return nil
	}
	enclosingLoops := func() []ast.Node {
		var loops []ast.Node
		for _, n := range stack {
			switch n.(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				loops = append(loops, n)
			}
		}
		return loops
	}
	localVar := func(id *ast.Ident) *types.Var {
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return nil
		}
		if _, isParam := fi.paramIndex[v]; !isParam {
			if !(fd.Pos() <= v.Pos() && v.Pos() < fd.End()) {
				return nil // package-level or foreign variable
			}
		}
		return v
	}
	// lhsRoot walks an assignment target to its base identifier,
	// noting whether the store goes through a dereference, field or
	// element (caller-visible for reference-like bases) and whether it
	// lands in a single indexed slot.
	var lhsRoot func(e ast.Expr) (*ast.Ident, bool, *Partition)
	lhsRoot = func(e ast.Expr) (*ast.Ident, bool, *Partition) {
		e = ast.Unparen(e)
		switch e := e.(type) {
		case *ast.Ident:
			return e, false, nil
		case *ast.StarExpr:
			id, _, part := lhsRoot(e.X)
			return id, true, part
		case *ast.SelectorExpr:
			if _, ok := info.Selections[e]; !ok {
				return nil, false, nil // package-qualified name
			}
			id, _, part := lhsRoot(e.X)
			return id, true, part
		case *ast.IndexExpr:
			id, _, _ := lhsRoot(e.X)
			var part *Partition
			if id != nil {
				if base := localVar(id); base != nil {
					if iid, ok := ast.Unparen(e.Index).(*ast.Ident); ok {
						if iv := localVar(iid); iv != nil {
							part = &Partition{Base: fi.rootVar(base), Index: fi.rootVar(iv)}
						}
					}
				}
			}
			return id, true, part
		}
		return nil, false, nil
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		switch n := n.(type) {
		case *ast.ForStmt:
			markLoopVars(fi, info, n.Init)
		case *ast.RangeStmt:
			for _, e := range []ast.Expr{n.Key, n.Value} {
				if id, ok := e.(*ast.Ident); ok && id != nil {
					if v, ok := info.Defs[id].(*types.Var); ok {
						fi.loopVars[v] = true
					}
				}
			}
			if t := info.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok && currentSpawn() == nil {
					fi.barriers = append(fi.barriers, n.Pos())
				}
			}
		case *ast.GoStmt:
			sp := &Spawn{Go: n, loops: enclosingLoops()}
			sp.InLoop = len(sp.loops) > 0
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				sp.Lit = lit
				spawnedLits[lit] = sp
			}
			fi.Spawns = append(fi.Spawns, sp)
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && currentSpawn() == nil {
				fi.barriers = append(fi.barriers, n.Pos())
			}
			if n.Op == token.AND {
				if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
					if _, claimed := pendingArgs[id]; !claimed && !pendingAtomic[id] {
						if _, claimed := pendingWrites[id]; !claimed {
							pendingWrites[id] = writeInfo{through: true}
						}
					}
				}
			}
		case *ast.IncDecStmt:
			if id, through, part := lhsRoot(n.X); id != nil {
				pendingWrites[id] = writeInfo{through: through, part: part}
			}
		case *ast.AssignStmt:
			in.collectAssign(fi, n, info, pendingWrites, lhsRoot, bindCount, currentSpawn())
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				switch e := ast.Unparen(res).(type) {
				case *ast.BinaryExpr:
					if e.Op == token.SUB {
						x := fi.Root(e.X, info)
						y := fi.Root(e.Y, info)
						if x != nil && y != nil {
							fi.retSubs = append(fi.retSubs, [2]*types.Var{x, y})
						}
					}
				case *ast.CallExpr:
					fi.retCalls = append(fi.retCalls, e)
				}
			}
		case *ast.BinaryExpr:
			switch n.Op {
			case token.LSS, token.LEQ, token.GTR, token.GEQ:
				x := fi.Root(n.X, info)
				y := fi.Root(n.Y, info)
				if x != nil && y != nil {
					fi.cmpPairs = append(fi.cmpPairs, [2]*types.Var{x, y})
				}
			}
		case *ast.CallExpr:
			in.collectCall(fi, n, info, stack, pendingArgs, pendingAtomic, currentSpawn(), enclosingLoops())
		case *ast.Ident:
			v := localVar(n)
			if v == nil {
				break
			}
			root := fi.rootVar(v)
			w, isWrite := pendingWrites[n]
			u := &Use{
				Var:       root,
				Pos:       n.Pos(),
				End:       n.End(),
				Node:      n,
				Spawn:     currentSpawn(),
				Write:     isWrite,
				Through:   w.through,
				AddrTaken: isWrite && w.through && w.part == nil && isBareAddr(stack),
				Atomic:    pendingAtomic[n],
				Part:      w.part,
				Arg:       pendingArgs[n],
			}
			// Writes through a single-bound pointer alias of base[idx]
			// are partitioned element stores on the base.
			if part, ok := fi.partitions[root]; ok && (u.Write || u.Arg != nil) {
				u.Var = part.Base
				u.Through = true
				u.Part = &part
			}
			classifyEscape(u, stack, info)
			fi.Uses = append(fi.Uses, u)
		}
		return true
	})
	return fi
}

func markLoopVars(fi *FuncInfo, info *types.Info, init ast.Stmt) {
	as, ok := init.(*ast.AssignStmt)
	if !ok {
		return
	}
	for _, lhs := range as.Lhs {
		if id, ok := lhs.(*ast.Ident); ok {
			if v, ok := info.Defs[id].(*types.Var); ok {
				fi.loopVars[v] = true
			}
		}
	}
}

// isBareAddr reports whether the ident on top of the stack sits under
// a bare &x (its address leaves local tracking).
func isBareAddr(stack []ast.Node) bool {
	for i := len(stack) - 2; i >= 0; i-- {
		switch n := stack[i].(type) {
		case *ast.ParenExpr:
			continue
		case *ast.UnaryExpr:
			return n.Op == token.AND
		default:
			return false
		}
	}
	return false
}

// classifyEscape sets Send/Stored/Returned from the use's nearest
// non-paren ancestor.
func classifyEscape(u *Use, stack []ast.Node, info *types.Info) {
	if len(stack) < 2 {
		return
	}
	id, _ := stack[len(stack)-1].(ast.Expr)
	if id == nil {
		return
	}
	i := len(stack) - 2
	for i >= 0 {
		if _, ok := stack[i].(*ast.ParenExpr); ok {
			i--
			continue
		}
		break
	}
	if i < 0 {
		return
	}
	switch p := stack[i].(type) {
	case *ast.SendStmt:
		if ast.Unparen(p.Value) == id {
			u.Send = true
		}
	case *ast.ReturnStmt:
		for _, r := range p.Results {
			if ast.Unparen(r) == id {
				u.Returned = true
			}
		}
	case *ast.AssignStmt:
		for j, r := range p.Rhs {
			if j >= len(p.Lhs) || ast.Unparen(r) != id {
				continue
			}
			switch lhs := ast.Unparen(p.Lhs[j]).(type) {
			case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
				u.Stored = true
			case *ast.Ident:
				if v, ok := info.Uses[lhs].(*types.Var); ok {
					if v.Parent() != nil && v.Parent().Parent() == types.Universe {
						u.Stored = true // package-level variable
					}
				}
			}
		}
	}
}

// collectAssign records alias and partition bindings and marks write
// targets for the identifier visits that follow.
func (in *Info) collectAssign(fi *FuncInfo, n *ast.AssignStmt, info *types.Info,
	pendingWrites map[*ast.Ident]writeInfo,
	lhsRoot func(ast.Expr) (*ast.Ident, bool, *Partition),
	bindCount map[types.Object]int, spawn *Spawn) {

	for _, lhs := range n.Lhs {
		id, through, part := lhsRoot(lhs)
		if id == nil || id.Name == "_" {
			continue
		}
		if info.Defs[id] != nil && !through {
			continue // fresh binding, not a write to shared state
		}
		pendingWrites[id] = writeInfo{through: through, part: part}
	}
	if len(n.Lhs) != len(n.Rhs) {
		return
	}
	for i, lhs := range n.Lhs {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		var lv *types.Var
		if d, ok := info.Defs[id].(*types.Var); ok {
			lv = d
		} else if u, ok := info.Uses[id].(*types.Var); ok {
			lv = u
		}
		if lv == nil || bindCount[lv] > 1 {
			continue
		}
		rhs := ast.Unparen(n.Rhs[i])
		switch r := rhs.(type) {
		case *ast.Ident:
			if rv, ok := info.Uses[r].(*types.Var); ok && !rv.IsField() {
				if fi.trackable(rv) {
					fi.aliases[lv] = fi.rootVar(rv)
				}
			}
		case *ast.UnaryExpr:
			if r.Op != token.AND {
				break
			}
			if ix, ok := ast.Unparen(r.X).(*ast.IndexExpr); ok {
				base, bok := ast.Unparen(ix.X).(*ast.Ident)
				idx, iok := ast.Unparen(ix.Index).(*ast.Ident)
				if bok && iok {
					bv, _ := info.Uses[base].(*types.Var)
					iv, _ := info.Uses[idx].(*types.Var)
					if bv != nil && iv != nil && fi.trackable(bv) {
						fi.partitions[lv] = Partition{Base: fi.rootVar(bv), Index: fi.rootVar(iv)}
					}
				}
			}
		}
	}
}

func (fi *FuncInfo) trackable(v *types.Var) bool {
	if v.IsField() {
		return false
	}
	if _, isParam := fi.paramIndex[v]; isParam {
		return true
	}
	return fi.Decl.Pos() <= v.Pos() && v.Pos() < fi.Decl.End()
}

// atomicPkg reports whether fn lives in sync/atomic.
func atomicPkg(fn *types.Func) bool {
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic"
}

// collectCall resolves the static callee, records the call site, links
// argument identifiers to it, and notes barrier calls.
func (in *Info) collectCall(fi *FuncInfo, call *ast.CallExpr, info *types.Info,
	stack []ast.Node, pendingArgs map[*ast.Ident]*ArgRef, pendingAtomic map[*ast.Ident]bool,
	spawn *Spawn, loops []ast.Node) {

	site := &CallSite{Call: call, Spawn: spawn, InLoop: len(loops) > 0, loops: loops}
	if len(stack) >= 2 {
		if g, ok := stack[len(stack)-2].(*ast.GoStmt); ok && g.Call == call {
			site.GoDirect = true
		}
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			site.Callee = fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				site.Callee = fn
				site.method = true
			}
		} else if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			site.Callee = fn // package-qualified call
		}
	}
	fi.Calls = append(fi.Calls, site)
	fi.callByExpr[call] = site

	// Barriers: sync.WaitGroup.Wait in the function's own goroutine.
	if site.method && spawn == nil && site.Callee != nil &&
		site.Callee.Name() == "Wait" && recvNamed(site.Callee, "sync", "WaitGroup") {
		fi.barriers = append(fi.barriers, call.Pos())
	}

	isAtomic := atomicPkg(site.Callee)
	link := func(e ast.Expr, idx int) {
		e = ast.Unparen(e)
		byAddr := false
		if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
			e = ast.Unparen(u.X)
			byAddr = true
		}
		id, ok := e.(*ast.Ident)
		if !ok {
			return
		}
		if isAtomic {
			pendingAtomic[id] = true
			return
		}
		pendingArgs[id] = &ArgRef{Site: site, Index: idx, ByAddr: byAddr}
	}
	base := 0
	if site.method {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if isAtomic || atomicRecv(site.Callee) {
				if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
					pendingAtomic[id] = true
				}
			} else {
				link(sel.X, 0)
			}
		}
		base = 1
	}
	if bi := builtinName(call, info); bi == "append" {
		for _, a := range call.Args[1:] {
			if id, ok := ast.Unparen(a).(*ast.Ident); ok {
				// Mark as heap store at the Ident visit.
				pendingArgs[id] = &ArgRef{Site: site, Index: -1}
			}
		}
		return
	}
	for i, a := range call.Args {
		link(a, base+i)
	}
}

func builtinName(call *ast.CallExpr, info *types.Info) string {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			return b.Name()
		}
	}
	return ""
}

// recvNamed reports whether fn's receiver (possibly a pointer) is the
// named type pkg.name.
func recvNamed(fn *types.Func, pkg, name string) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkg
}

// atomicRecv reports whether fn is a method of a sync/atomic type
// (atomic.Int64 and friends).
func atomicRecv(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
	}
	return false
}

// summarize folds a function's recorded uses into its parameter
// summary under the current (possibly still converging) summaries of
// its callees.
func (in *Info) summarize(fi *FuncInfo) FuncSummary {
	params := make([]ParamFlow, len(fi.Params))
	// Joins: every spawn is followed by a barrier in the spawner, and
	// every callee whose summary contributes goroutine flow joins too.
	joins := true
	for _, s := range fi.Spawns {
		joined := false
		for _, b := range fi.barriers {
			if b > s.Go.End() {
				joined = true
				break
			}
		}
		if !joined {
			joins = false
		}
	}
	for _, u := range fi.Uses {
		i, ok := fi.paramIndex[u.Var]
		if !ok {
			continue
		}
		inGo := u.Spawn != nil
		var fl ParamFlow
		// A use whose only role is feeding a resolved call is described
		// by the callee's summary; counting the argument evaluation as a
		// direct use would make `go f(p)` look different from the
		// equivalent spawned literal.
		if u.Arg == nil {
			fl |= UsedDirect
		}
		if u.Write && u.Through && refLike(fi.Params[i].Type()) && !u.Atomic {
			fl |= WrittenDirect
		}
		if u.AddrTaken {
			fl |= EscapesUnknown
		}
		if u.Send {
			fl |= SentToChannel
		}
		if u.Stored {
			fl |= StoredToHeap
		}
		if u.Returned {
			fl |= FlowsToReturn
		}
		if u.Arg != nil {
			if u.Arg.Index < 0 {
				fl |= UsedDirect | StoredToHeap // append operand
			} else if sum, ok := in.SummaryOf(u.Arg.Site.Callee); ok {
				contributed := liftFlow(u.Arg.Site.GoDirect, sum.Param(u.Arg.Index))
				fl |= contributed
				if contributed&(ReachesGoroutine|WrittenInGoroutine) != 0 && !sum.Joins {
					joins = false
				}
			} else {
				fl |= UsedDirect | EscapesUnknown
			}
		}
		params[i] |= liftFlow(inGo, fl)
	}
	var subs []RawSub
	addSub := func(s RawSub) {
		for _, have := range subs {
			if have == s {
				return
			}
		}
		subs = append(subs, s)
	}
	for _, pair := range fi.retSubs {
		xi, xok := fi.paramIndex[pair[0]]
		yi, yok := fi.paramIndex[pair[1]]
		// A function that compares the same two operands before
		// subtracting (the PositiveSub shape) clamps, so its result is
		// not a raw difference.
		if xok && yok && !fi.ComparedPair(pair[0], pair[1]) {
			addSub(RawSub{X: xi, Y: yi})
		}
	}
	for _, call := range fi.retCalls {
		site := fi.callByExpr[call]
		if site == nil || site.Callee == nil {
			continue
		}
		sum, ok := in.SummaryOf(site.Callee)
		if !ok {
			continue
		}
		for _, rs := range sum.RawSubs {
			xv := fi.Root(site.ArgExpr(rs.X), in.TypesInfo)
			yv := fi.Root(site.ArgExpr(rs.Y), in.TypesInfo)
			if xv == nil || yv == nil {
				continue
			}
			xi, xok := fi.paramIndex[xv]
			yi, yok := fi.paramIndex[yv]
			if xok && yok {
				addSub(RawSub{X: xi, Y: yi})
			}
		}
	}
	return FuncSummary{Params: params, RawSubs: subs, Joins: joins}
}

// PosString formats a position for diagnostics.
func (in *Info) PosString(p token.Pos) string {
	pos := in.Fset.Position(p)
	return pos.Filename + ":" + strconv.Itoa(pos.Line)
}
