// Package analysis is a dependency-free reimplementation of the
// golang.org/x/tools/go/analysis vocabulary, built on the standard
// library's go/ast + go/types stack. The build environment has no
// module proxy, so rather than depending on x/tools the package mirrors
// its API shape (Analyzer, Pass, Diagnostic, an analysistest-style
// golden harness, and the cmd/go vet-tool protocol); migrating the
// analyzers to the upstream framework later is a mechanical change.
//
// The suite exists to enforce, at analysis time, contracts the
// simulators otherwise defend only with runtime tests: tolerance-aware
// float comparisons (the landscape/bounds code compares expected work
// everywhere), seeded determinism (bit-identical traces across runs),
// the zero-cost-when-nil Obs instrumentation contract, checked sink
// errors, and silence of library packages on stdout.
//
// # Escape hatch
//
// A violation that is intentional is annotated in source:
//
//	//lint:allow <analyzer>[,<analyzer>...] <reason>
//
// The annotation suppresses the named analyzers on its own line and on
// the line directly below it (so it can sit at the end of the offending
// line or on its own line above). "all" suppresses every analyzer.
// Drivers apply suppression uniformly, so analyzers never need to know
// about it.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one static check. Run inspects a single package
// through the Pass and reports findings via pass.Report; it returns an
// error only for internal failures, never for findings.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in //lint:allow
	// annotations. It must be a valid identifier.
	Name string
	// Doc is a one-paragraph description: first line is a summary, the
	// rest explains the contract the analyzer guards.
	Doc string
	// Run performs the analysis.
	Run func(*Pass) error
}

// A Diagnostic is one finding, positioned in the analyzed package.
// End, when valid, marks the end of the offending expression so
// drivers can render the full span (SARIF regions, editor squiggles);
// NoPos degrades to a point diagnostic.
type Diagnostic struct {
	Pos     token.Pos
	End     token.Pos
	Message string
}

// A Pass presents one package to one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)

	session *Session
	shared  map[string]sharedEntry
}

type sharedEntry struct {
	val interface{}
	err error
}

// Reportf reports a formatted point diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Range is anything with a source extent — every ast.Node qualifies.
type Range interface {
	Pos() token.Pos
	End() token.Pos
}

// ReportRangef reports a formatted diagnostic spanning rng (typically
// the offending expression).
func (p *Pass) ReportRangef(rng Range, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: rng.Pos(), End: rng.End(), Message: fmt.Sprintf(format, args...)})
}

// Facts returns the facts blob exported under namespace ns by an
// earlier analysis of the package at path (an import of this one), or
// nil when the run has no session or the package exported none.
func (p *Pass) Facts(path, ns string) []byte {
	return p.session.Facts(path, ns)
}

// ExportFacts records this package's facts blob under namespace ns for
// later packages in the session (and for vetx serialization in the vet
// driver). Facts are keyed by the package's import path with build
// variant decorations intact; importers look packages up by the plain
// path types.Package.Path() reports, which matches for everything an
// importer can actually name.
func (p *Pass) ExportFacts(ns string, data []byte) {
	p.session.SetFacts(p.Pkg.Path(), ns, data)
}

// Shared memoizes an expensive per-package computation (for example the
// flow engine's call graph and summaries) across the analyzers of one
// RunAnalyzers call: the first analyzer to ask builds, the rest reuse.
// The key names the computation; build runs at most once per package.
func (p *Pass) Shared(key string, build func() (interface{}, error)) (interface{}, error) {
	if e, ok := p.shared[key]; ok {
		return e.val, e.err
	}
	val, err := build()
	p.shared[key] = sharedEntry{val, err}
	return val, err
}

// PkgBase returns the last element of a package path with build-variant
// decorations removed: "repro/internal/core [test]" and
// "repro/internal/core_test" both yield "core". Analyzers that restrict
// themselves to named packages match on this, so they behave the same
// under the in-process loader and under go vet's test variants.
func PkgBase(path string) string {
	if i := strings.IndexByte(path, ' '); i >= 0 {
		path = path[:i]
	}
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		path = path[i+1:]
	}
	return strings.TrimSuffix(path, "_test")
}

// A Finding is a resolved diagnostic: position translated, analyzer
// attached, suppression already applied. End is the zero Position for
// point diagnostics.
type Finding struct {
	Analyzer string
	Pos      token.Position
	End      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s [%s]", f.Pos, f.Message, f.Analyzer)
}

// RunAnalyzers applies each analyzer to the package, filters findings
// through the //lint:allow suppressions collected from the files, and
// returns the survivors sorted by position. It is the single execution
// path shared by the standalone driver, the vet-tool driver and the
// golden-test harness, so suppression and ordering cannot drift between
// them. The session (which may be nil) supplies facts from already
// analyzed dependencies and receives this package's exports; drivers
// analyzing multiple packages pass one session, ordered
// dependency-first (load.Sort), so interprocedural analyses see their
// callees' summaries.
func RunAnalyzers(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) ([]Finding, error) {
	return (*Session)(nil).Run(fset, files, pkg, info, analyzers)
}

// Run is RunAnalyzers with cross-package facts carried by the session.
func (s *Session) Run(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) ([]Finding, error) {
	sup := CollectSuppressions(fset, files)
	shared := make(map[string]sharedEntry)
	var out []Finding
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			session:   s,
			shared:    shared,
		}
		name := a.Name
		pass.Report = func(d Diagnostic) {
			if sup.Allowed(fset, d.Pos, name) {
				return
			}
			f := Finding{Analyzer: name, Pos: fset.Position(d.Pos), Message: d.Message}
			if d.End.IsValid() {
				f.End = fset.Position(d.End)
			}
			out = append(out, f)
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s: %v", a.Name, err)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	// Dedup: the same finding can surface twice when a package is
	// analyzed both bare and as a test variant.
	dedup := out[:0]
	for i, f := range out {
		if i > 0 && f == out[i-1] {
			continue
		}
		dedup = append(dedup, f)
	}
	return dedup, nil
}
