package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// allowMarker introduces an in-source suppression:
//
//	//lint:allow floatcmp exact plateau detection is intentional
//	//lint:allow floatcmp,determinism reason...
//
// The directive names one or more analyzers (comma-separated, no
// spaces) followed by a free-form justification. By convention a reason
// is always given; the parser does not enforce it, but reviewers do.
const allowMarker = "lint:allow"

// Suppressions records which analyzers are allowed on which source
// lines. An annotation covers its own line and the next line, so both
// the trailing-comment and the line-above styles work.
type Suppressions struct {
	byFile map[string]map[int][]string // filename -> line -> analyzer names
}

// CollectSuppressions scans every comment in files for lint:allow
// directives. Files must have been parsed with parser.ParseComments.
func CollectSuppressions(fset *token.FileSet, files []*ast.File) *Suppressions {
	s := &Suppressions{byFile: make(map[string]map[int][]string)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, allowMarker) {
					continue
				}
				fields := strings.Fields(strings.TrimPrefix(text, allowMarker))
				if len(fields) == 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				lines := s.byFile[pos.Filename]
				if lines == nil {
					lines = make(map[int][]string)
					s.byFile[pos.Filename] = lines
				}
				for _, name := range strings.Split(fields[0], ",") {
					if name = strings.TrimSpace(name); name != "" {
						lines[pos.Line] = append(lines[pos.Line], name)
					}
				}
			}
		}
	}
	return s
}

// Allowed reports whether analyzer name is suppressed at pos: an
// annotation on the same line or on the line directly above applies.
func (s *Suppressions) Allowed(fset *token.FileSet, pos token.Pos, name string) bool {
	p := fset.Position(pos)
	lines := s.byFile[p.Filename]
	if lines == nil {
		return false
	}
	for _, line := range [2]int{p.Line, p.Line - 1} {
		for _, n := range lines[line] {
			if n == name || n == "all" {
				return true
			}
		}
	}
	return false
}
