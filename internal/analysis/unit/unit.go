// Package unit implements the cmd/go vet-tool protocol, so the lint
// suite can run as `go vet -vettool=$(which cslint) ./...`: the go
// command plans the build, supplies per-package JSON configs with
// compiler export data for every import, and invokes the tool once per
// package. This is x/tools' unitchecker reimplemented on the standard
// library: export data is read through go/importer's "gc" importer with
// a lookup function over the config's PackageFile map.
//
// Protocol (reverse-engineered from cmd/go/internal/work): the tool is
// invoked with a single argument ending in .cfg; it must write the
// VetxOutput facts file, report diagnostics to stderr as
// file:line:col: message, and exit nonzero when it found anything.
// Facts (the interprocedural flow summaries) are serialized as a JSON
// map of namespace to blob per package; cmd/go hands dependencies'
// vetx files back via PackageVetx, from which the session is
// rehydrated before analysis.
package unit

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"

	"repro/internal/analysis"
)

// Config is the JSON schema cmd/go writes for each vetted package
// (vetConfig in cmd/go/internal/work/exec.go).
type Config struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoVersion    string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string
	ImportMap    map[string]string
	PackageFile  map[string]string
	Standard     map[string]bool
	PackageVetx  map[string]string
	VetxOnly     bool
	VetxOutput   string

	SucceedOnTypecheckFailure bool
}

// Run executes the analyzers over the package described by cfgFile and
// returns the process exit code: 0 clean, 1 findings or type errors, 2
// protocol errors.
func Run(cfgFile string, analyzers []*analysis.Analyzer, stderr io.Writer) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintln(stderr, "cslint:", err)
		return 2
	}
	var cfg Config
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(stderr, "cslint: parsing %s: %v\n", cfgFile, err)
		return 2
	}
	// The go command reads the facts file back even when the run fails;
	// write an empty one first so error paths still satisfy the protocol,
	// then overwrite it with real facts after analysis.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(stderr, "cslint:", err)
			return 2
		}
	}
	if cfg.Compiler != "" && cfg.Compiler != "gc" {
		fmt.Fprintf(stderr, "cslint: unsupported compiler %q\n", cfg.Compiler)
		return 2
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintln(stderr, err)
			return 1
		}
		files = append(files, f)
	}

	gc := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	var terrs []error
	tconf := types.Config{
		Importer: importerFunc(func(importPath string) (*types.Package, error) {
			if importPath == "unsafe" {
				return types.Unsafe, nil
			}
			path := importPath
			if mapped, ok := cfg.ImportMap[importPath]; ok {
				path = mapped
			}
			return gc.Import(path)
		}),
		GoVersion: cfg.GoVersion,
		Sizes:     types.SizesFor("gc", build.Default.GOARCH),
		Error: func(err error) {
			terrs = append(terrs, err)
		},
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	tpkg, _ := tconf.Check(cfg.ImportPath, fset, files, info)
	if len(terrs) > 0 {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		for _, e := range terrs {
			fmt.Fprintln(stderr, e)
		}
		return 1
	}

	// Rehydrate the session from the dependencies' vetx facts files so
	// interprocedural analyzers see cross-package summaries. Standard
	// library facts are deliberately dropped: the standalone driver
	// never loads the stdlib, so honoring its facts here would let
	// call-graph analyzers build deeper chains (fmt's handleMethods
	// reaching every Stringer, container/heap reaching Push) under one
	// driver but not the other. Both modes treat the stdlib as opaque
	// and rely on the analyzers' built-in models of it.
	sess := analysis.NewSession()
	for path, vetx := range cfg.PackageVetx {
		if cfg.Standard[path] {
			continue
		}
		blob, err := os.ReadFile(vetx)
		if err != nil || len(blob) == 0 {
			// Missing or empty facts degrade gracefully: the flow engine
			// treats the dependency's functions as unknown.
			continue
		}
		var m map[string][]byte
		if err := json.Unmarshal(blob, &m); err != nil {
			fmt.Fprintf(stderr, "cslint: parsing facts %s: %v\n", vetx, err)
			return 2
		}
		sess.ImportFacts(path, m)
	}

	findings, err := sess.Run(fset, files, tpkg, info, analyzers)
	if err != nil {
		fmt.Fprintln(stderr, "cslint:", err)
		return 2
	}
	if cfg.VetxOutput != "" {
		if facts := sess.PackageFacts(cfg.ImportPath); facts != nil {
			blob, err := json.Marshal(facts)
			if err != nil {
				fmt.Fprintln(stderr, "cslint:", err)
				return 2
			}
			if err := os.WriteFile(cfg.VetxOutput, blob, 0o666); err != nil {
				fmt.Fprintln(stderr, "cslint:", err)
				return 2
			}
		}
	}
	if cfg.VetxOnly {
		// Dependency pass: cmd/go only wants the facts file; findings for
		// this package are reported when it is vetted directly.
		return 0
	}
	for _, f := range findings {
		fmt.Fprintln(stderr, f)
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
