package hotalloc

import (
	"encoding/json"
	"fmt"
	"sort"
)

// FactsNamespace keys hotalloc's per-function allocation summaries in
// an analysis.Session (and therefore in vetx facts files).
const FactsNamespace = "hotalloc"

// An AllocSite is one heap-allocating construct in a function body, as
// serialized into facts. Pos is a short "file.go:line" anchor (base
// filename, so the string is stable across checkouts); Desc is the
// human fragment diagnostics embed.
type AllocSite struct {
	Kind string `json:"kind"`
	Pos  string `json:"pos"`
	Desc string `json:"desc"`
}

// Sites maps a function's full name to its unsuppressed allocation
// sites — the per-package facts payload. Sites carry //lint:allow
// filtering already applied in the defining package, so an importer
// never re-reports an allocation its owner justified.
type Sites map[string][]AllocSite

// Encode packs sites deterministically (sorted function names; site
// order is source order, already deterministic).
func (s Sites) Encode() ([]byte, error) {
	names := make([]string, 0, len(s))
	for name := range s {
		names = append(names, name)
	}
	sort.Strings(names)
	type entry struct {
		Name  string      `json:"name"`
		Sites []AllocSite `json:"sites"`
	}
	entries := make([]entry, 0, len(names))
	for _, name := range names {
		entries = append(entries, entry{name, s[name]})
	}
	return json.Marshal(entries)
}

// DecodeSites unpacks a facts blob produced by Encode. A nil or empty
// blob yields an empty map.
func DecodeSites(data []byte) (Sites, error) {
	out := make(Sites)
	if len(data) == 0 {
		return out, nil
	}
	var entries []struct {
		Name  string      `json:"name"`
		Sites []AllocSite `json:"sites"`
	}
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("hotalloc: decoding sites: %v", err)
	}
	for _, e := range entries {
		out[e.Name] = e.Sites
	}
	return out, nil
}
