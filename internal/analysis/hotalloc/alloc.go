package hotalloc

// Allocation-site detection: one pass over a function body finds every
// construct that may heap-allocate, refined by two cheap analyses so
// the deliberate patterns stay silent:
//
//   - a capacity analysis (the dataflow fixpoint engine over the
//     function's CFG) tracks which slice variables flow from an
//     explicit-capacity make or an s[:0] reuse, so append onto a
//     preallocated buffer is not a finding;
//   - a flat escape lattice ({NoEscape, Escapes}, computed
//     syntactically) lets a constant-size make/new/literal that stays
//     local to the function stay silent, matching what the compiler's
//     escape analysis will stack-allocate.
//
// Everything else — growing appends, escaping makes, interface boxing,
// capturing closures, map iteration, fmt and string concatenation —
// becomes an AllocSite.

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"sort"
	"strconv"

	"repro/internal/analysis"
	"repro/internal/analysis/cfg"
	"repro/internal/analysis/dataflow"
	"repro/internal/analysis/flow"
)

// A localSite is an AllocSite still carrying its real position for
// in-package reporting.
type localSite struct {
	kind string
	pos  token.Pos
	end  token.Pos
	desc string
}

func (s localSite) packed(fset *token.FileSet) AllocSite {
	return AllocSite{Kind: s.kind, Pos: shortPos(fset, s.pos), Desc: s.desc}
}

// Pos and End make localSite an analysis.Range for ReportRangef.
func (s localSite) Pos() token.Pos { return s.pos }
func (s localSite) End() token.Pos { return s.end }

// shortPos renders "file.go:line" with the base filename, stable
// across checkout roots (facts strings must not embed absolute paths).
func shortPos(fset *token.FileSet, p token.Pos) string {
	pos := fset.Position(p)
	name := pos.Filename
	for i := len(name) - 1; i >= 0; i-- {
		if name[i] == '/' {
			name = name[i+1:]
			break
		}
	}
	return name + ":" + strconv.Itoa(pos.Line)
}

// render pretty-prints a short source fragment for diagnostics.
func render(fset *token.FileSet, n ast.Node) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, n); err != nil {
		return "?"
	}
	s := buf.String()
	if len(s) > 40 {
		s = s[:37] + "..."
	}
	return s
}

// collectSites finds the allocation sites of one declared function.
// Sites inside function literals belong to the enclosing declaration,
// mirroring the flow engine's attribution.
func collectSites(pass *analysis.Pass, fi *flow.FuncInfo) []localSite {
	c := &collector{pass: pass, fi: fi, info: pass.TypesInfo}
	c.capacity(fi.Decl.Body)
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			c.closure(lit)
			c.capacity(lit.Body)
			// Keep walking: allocation sites inside the literal are
			// sites of the enclosing function.
			return true
		}
		c.node(n)
		return true
	})
	sort.Slice(c.sites, func(i, j int) bool { return c.sites[i].pos < c.sites[j].pos })
	return c.sites
}

type collector struct {
	pass  *analysis.Pass
	fi    *flow.FuncInfo
	info  *types.Info
	sites []localSite
}

func (c *collector) add(kind string, n ast.Node, desc string) {
	c.sites = append(c.sites, localSite{kind: kind, pos: n.Pos(), end: n.End(), desc: desc})
}

// node dispatches the context-free checks (everything but append
// capacity, which needs the dataflow state).
func (c *collector) node(n ast.Node) {
	switch n := n.(type) {
	case *ast.CallExpr:
		c.call(n)
	case *ast.UnaryExpr:
		if n.Op == token.AND {
			if lit, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
				c.compositeAddr(n, lit)
			}
		}
	case *ast.CompositeLit:
		c.composite(n)
	case *ast.BinaryExpr:
		if n.Op == token.ADD && c.isString(n) && !c.constant(n) {
			c.add("concat", n, "string concatenation allocates")
		}
	case *ast.AssignStmt:
		if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && c.isString(n.Lhs[0]) {
			c.add("concat", n, "string += allocates")
		}
		c.boxedAssign(n)
	case *ast.ReturnStmt:
		c.boxedReturn(n)
	case *ast.RangeStmt:
		if t := c.info.TypeOf(n.X); t != nil {
			if _, ok := t.Underlying().(*types.Map); ok {
				c.add("mapiter", n, "map iteration (hash-order walk) on the hot path")
			}
		}
	}
}

func (c *collector) isString(e ast.Expr) bool {
	t := c.info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func (c *collector) constant(e ast.Expr) bool {
	tv, ok := c.info.Types[e]
	return ok && tv.Value != nil
}

// call checks one call expression: make/new escapes, fmt, and
// interface boxing of arguments.
func (c *collector) call(call *ast.CallExpr) {
	switch builtinName(call, c.info) {
	case "make":
		t := c.info.TypeOf(call)
		if t == nil {
			return
		}
		switch t.Underlying().(type) {
		case *types.Slice, *types.Map, *types.Chan:
			if c.constSized(call.Args[1:]) && !c.escapes(call) {
				return // stack-allocatable: constant size, never leaves
			}
			c.add("make", call, render(c.pass.Fset, call)+" allocates")
		}
		return
	case "new":
		if !c.escapes(call) {
			return
		}
		c.add("new", call, render(c.pass.Fset, call)+" allocates")
		return
	case "":
		// not a builtin: fall through to signature checks
	default:
		return
	}
	// Conversions are not allocation sites here ([]byte(s) and friends
	// are out of scope); they carry no *types.Signature.
	sig, ok := typeAsSignature(c.info, call.Fun)
	if !ok {
		return
	}
	if fn := calleeOf(c.info, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		c.add("fmt", call, "fmt."+fn.Name()+" allocates (formats through interfaces)")
		return // the fmt finding subsumes per-argument boxing
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			last := params.At(params.Len() - 1).Type()
			if call.Ellipsis.IsValid() {
				pt = last // f(xs...) passes the slice itself: no boxing
			} else if s, ok := last.Underlying().(*types.Slice); ok {
				pt = s.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil {
			continue
		}
		if c.boxes(pt, arg) {
			c.add("box", arg, render(c.pass.Fset, arg)+" boxed into "+pt.String()+" argument")
		}
	}
}

func typeAsSignature(info *types.Info, fun ast.Expr) (*types.Signature, bool) {
	tv, ok := info.Types[ast.Unparen(fun)]
	if !ok || tv.IsType() {
		return nil, false
	}
	sig, ok := tv.Type.(*types.Signature)
	return sig, ok
}

func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// boxes reports whether storing arg into a location of type dst is an
// interface conversion that allocates: dst is an interface, the value
// is concrete, not pointer-shaped, and not a compile-time constant
// (small constants are interned by the runtime).
func (c *collector) boxes(dst types.Type, arg ast.Expr) bool {
	if dst == nil || !types.IsInterface(dst) {
		return false
	}
	at := c.info.TypeOf(arg)
	if at == nil || types.IsInterface(at) {
		return false
	}
	if b, ok := at.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return false
	}
	if c.constant(arg) {
		return false
	}
	return !pointerShaped(at)
}

// pointerShaped reports whether values of t fit an interface's data
// word without allocation.
func pointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return t.Underlying().(*types.Basic).Kind() == types.UnsafePointer
	}
	return false
}

func (c *collector) boxedAssign(n *ast.AssignStmt) {
	if len(n.Lhs) != len(n.Rhs) {
		return
	}
	for i, lhs := range n.Lhs {
		if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
			continue
		}
		var lt types.Type
		if n.Tok == token.DEFINE {
			if id, ok := lhs.(*ast.Ident); ok {
				if obj := c.info.Defs[id]; obj != nil {
					lt = obj.Type()
				}
			}
		} else {
			lt = c.info.TypeOf(lhs)
		}
		if c.boxes(lt, n.Rhs[i]) {
			c.add("box", n.Rhs[i], render(c.pass.Fset, n.Rhs[i])+" boxed into "+lt.String())
		}
	}
}

func (c *collector) boxedReturn(n *ast.ReturnStmt) {
	sig, ok := c.fi.Obj.Type().(*types.Signature)
	if !ok || sig.Results().Len() != len(n.Results) {
		return
	}
	for i, res := range n.Results {
		if c.boxes(sig.Results().At(i).Type(), res) {
			c.add("box", res, render(c.pass.Fset, res)+" boxed into "+sig.Results().At(i).Type().String()+" result")
		}
	}
}

// compositeAddr checks &T{...}: a heap allocation unless the pointer
// provably stays local.
func (c *collector) compositeAddr(addr *ast.UnaryExpr, lit *ast.CompositeLit) {
	if !c.escapes(addr) {
		return
	}
	c.add("lit", addr, "&"+render(c.pass.Fset, lit)+" escapes to the heap")
}

// composite checks value literals of reference kinds: slice and map
// literals allocate their backing store like make does.
func (c *collector) composite(lit *ast.CompositeLit) {
	t := c.info.TypeOf(lit)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Slice, *types.Map:
		if !c.escapes(lit) {
			return
		}
		c.add("lit", lit, render(c.pass.Fset, lit)+" allocates its backing store")
	}
}

// constSized reports whether every size argument is a compile-time
// constant — the precondition for the compiler stack-allocating the
// backing store.
func (c *collector) constSized(args []ast.Expr) bool {
	for _, a := range args {
		if !c.constant(a) {
			return false
		}
	}
	return true
}

// closure records a function literal that captures variables: the
// capture environment is a heap allocation at the point the literal is
// evaluated. Capture-free literals compile to static functions and
// stay silent.
func (c *collector) closure(lit *ast.FuncLit) {
	captured := c.captures(lit)
	if len(captured) == 0 {
		return
	}
	loopy := false
	for _, v := range captured {
		if c.fi.IsLoopVar(v) {
			loopy = true
		}
	}
	desc := "closure captures " + strconv.Itoa(len(captured)) + " variable(s)"
	if loopy {
		desc = "closure captures a loop variable (allocates per iteration)"
	}
	c.add("closure", lit, desc)
}

// captures lists the variables lit closes over: objects declared in
// the enclosing function, outside the literal.
func (c *collector) captures(lit *ast.FuncLit) []*types.Var {
	seen := map[*types.Var]bool{}
	var out []*types.Var
	decl := c.fi.Decl
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := c.info.Uses[id].(*types.Var)
		if !ok || v.IsField() || seen[v] {
			return true
		}
		// Declared inside the enclosing declaration but outside the
		// literal: a capture. Package-level vars are direct references.
		if v.Pos() >= decl.Pos() && v.Pos() < decl.End() &&
			!(v.Pos() >= lit.Pos() && v.Pos() < lit.End()) {
			seen[v] = true
			out = append(out, v)
		}
		return true
	})
	return out
}

// escapes is the flat escape lattice: false only when the construct is
// bound to a simple local variable whose every use is a benign local
// access (indexing, slicing, ranging, len/cap/copy/delete, rebinding,
// append as the destination, field access, dereference). Anything the
// walk cannot prove benign — returns, call arguments, captures, &v,
// stores into other structures, method calls — escapes.
func (c *collector) escapes(expr ast.Expr) bool {
	v := c.boundVar(expr)
	if v == nil {
		return true // not bound to a simple local: assume the worst
	}
	return c.escapesLocally(v)
}

// boundVar returns the local variable expr is directly assigned to in
// a single-value v := expr / v = expr / var v = expr, nil otherwise.
func (c *collector) boundVar(expr ast.Expr) *types.Var {
	var found *types.Var
	ast.Inspect(c.fi.Decl.Body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != 1 || len(n.Rhs) != 1 || ast.Unparen(n.Rhs[0]) != expr {
				return true
			}
			if id, ok := n.Lhs[0].(*ast.Ident); ok {
				if v := c.localVarObj(id); v != nil {
					found = v
				}
			}
			return false
		case *ast.ValueSpec:
			for i, val := range n.Values {
				if ast.Unparen(val) == expr && i < len(n.Names) {
					if v := c.localVarObj(n.Names[i]); v != nil {
						found = v
					}
				}
			}
		}
		return true
	})
	return found
}

func (c *collector) localVarObj(id *ast.Ident) *types.Var {
	if id.Name == "_" {
		return nil
	}
	if v, ok := c.info.Defs[id].(*types.Var); ok {
		return v
	}
	if v, ok := c.info.Uses[id].(*types.Var); ok && !v.IsField() && v.Parent() != c.pass.Pkg.Scope() {
		return v
	}
	return nil
}

// escapesLocally scans every use of v in the function for a context
// that lets the value leave the frame.
func (c *collector) escapesLocally(v *types.Var) bool {
	escaped := false
	var inspect func(n ast.Node, inLit bool)
	inspect = func(n ast.Node, inLit bool) {
		ast.Inspect(n, func(n ast.Node) bool {
			if escaped {
				return false
			}
			switch n := n.(type) {
			case *ast.FuncLit:
				// A use inside a literal is a capture: escapes.
				inspect(n.Body, true)
				return false
			case *ast.Ident:
				if c.info.Uses[n] != types.Object(v) && c.info.Defs[n] != types.Object(v) {
					return true
				}
				if inLit || !c.benignUse(n) {
					escaped = true
				}
			}
			return true
		})
	}
	inspect(c.fi.Decl.Body, false)
	return escaped
}

// benignUse reports whether the use of ident id keeps the value inside
// the frame. parentOf walks the body lazily; the body is small enough
// that the repeated walks stay cheap (functions are linted once).
func (c *collector) benignUse(id *ast.Ident) bool {
	parents := parentChain(c.fi.Decl.Body, id)
	if parents == nil {
		return false
	}
	// Walk outward through transparent wrappers.
	child := ast.Node(id)
	for i := len(parents) - 1; i >= 0; i-- {
		p := parents[i]
		switch p := p.(type) {
		case *ast.ParenExpr:
			child = p
			continue
		case *ast.IndexExpr:
			return p.X == child // v[i] ok; x[v] is an index read, also ok
		case *ast.SliceExpr:
			return p.X == child
		case *ast.RangeStmt:
			return p.X == child || p.Key == child || p.Value == child
		case *ast.StarExpr:
			child = p
			continue
		case *ast.SelectorExpr:
			if p.X != child {
				return false
			}
			// Field access stays local; a method value or call may
			// retain the receiver.
			if sel, ok := c.info.Selections[p]; ok && sel.Kind() == types.FieldVal {
				child = p
				continue
			}
			return false
		case *ast.AssignStmt:
			for _, l := range p.Lhs {
				if l == child {
					return true // rebinding or store into v's element
				}
			}
			return false // v on the RHS flows somewhere else
		case *ast.CallExpr:
			return c.benignCallUse(p, child)
		case *ast.ExprStmt, *ast.BlockStmt, *ast.IfStmt, *ast.ForStmt,
			*ast.SwitchStmt, *ast.CaseClause, *ast.IncDecStmt:
			return true
		case *ast.BinaryExpr, *ast.UnaryExpr:
			if u, ok := p.(*ast.UnaryExpr); ok && u.Op == token.AND {
				return false // &v escapes
			}
			child = p
			continue
		default:
			return false
		}
	}
	return true
}

// benignCallUse: v may appear in len/cap/copy/delete and as append's
// destination without escaping; any other call argument escapes.
func (c *collector) benignCallUse(call *ast.CallExpr, child ast.Node) bool {
	switch builtinName(call, c.info) {
	case "len", "cap", "copy", "delete":
		return true
	case "append":
		return len(call.Args) > 0 && ast.Unparen(call.Args[0]) == child
	}
	return false
}

// parentChain returns the ancestors of target inside root, outermost
// first; nil when target is not found.
func parentChain(root ast.Node, target ast.Node) []ast.Node {
	var stack, found []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if n == target {
			found = append([]ast.Node(nil), stack...)
			return false
		}
		stack = append(stack, n)
		return true
	})
	return found
}

func builtinName(call *ast.CallExpr, info *types.Info) string {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			return b.Name()
		}
	}
	return ""
}

// --- capacity analysis -------------------------------------------------

// capState is the per-variable capacity lattice: bottom < reserved,
// other; reserved means the slice flows from an explicit-capacity make
// or an s[:0] reuse, so appends onto it are deliberate.
type capState uint8

const (
	capBottom capState = iota
	capReserved
	capOther
)

type capEnv map[*types.Var]capState

type capLattice struct{}

func (capLattice) Bottom() capEnv { return nil }

func (capLattice) Join(a, b capEnv) capEnv {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	out := make(capEnv, len(a)+len(b))
	for v, s := range a {
		out[v] = s
	}
	for v, s := range b {
		if cur, ok := out[v]; !ok || s > cur {
			out[v] = s
		}
	}
	return out
}

func (capLattice) Equal(a, b capEnv) bool {
	if len(a) != len(b) {
		return false
	}
	for v, s := range a {
		if b[v] != s {
			return false
		}
	}
	return true
}

func (capLattice) Widen(prev, next capEnv) capEnv { return next }

// capacity runs the append-capacity analysis over one body (a
// declaration's or a literal's: the cfg treats literals as opaque, so
// each body gets its own fixpoint) and records a site for every append
// whose destination has no provable capacity reservation.
func (c *collector) capacity(body *ast.BlockStmt) {
	g := cfg.Build(body)
	res, err := dataflow.Forward(g, dataflow.Problem[capEnv]{
		Lattice: capLattice{},
		Entry:   capEnv{},
		Transfer: func(b *cfg.Block, in capEnv) capEnv {
			env := in
			for _, n := range b.Nodes {
				env = c.capStep(env, n)
			}
			return env
		},
	})
	if err != nil {
		return // no refinement: stay silent rather than guess
	}
	for _, b := range g.Blocks {
		env := res.In[b]
		for _, n := range b.Nodes {
			c.checkAppends(env, n, body)
			env = c.capStep(env, n)
		}
	}
}

// capStep interprets one block node's assignments into the capacity
// environment.
func (c *collector) capStep(env capEnv, n ast.Node) capEnv {
	set := func(v *types.Var, s capState) {
		next := make(capEnv, len(env)+1)
		for k, val := range env {
			next[k] = val
		}
		next[v] = s
		env = next
	}
	switch n := n.(type) {
	case *cfg.RangeHeader:
		for _, e := range []ast.Expr{n.Range.Key, n.Range.Value} {
			if id, ok := e.(*ast.Ident); ok && id != nil {
				if v := c.localVarObj(id); v != nil {
					set(v, capOther)
				}
			}
		}
	case *ast.AssignStmt:
		if len(n.Lhs) != len(n.Rhs) {
			for _, l := range n.Lhs {
				if id, ok := l.(*ast.Ident); ok {
					if v := c.localVarObj(id); v != nil {
						set(v, capOther)
					}
				}
			}
			return env
		}
		for i, l := range n.Lhs {
			id, ok := l.(*ast.Ident)
			if !ok {
				continue
			}
			v := c.localVarObj(id)
			if v == nil {
				continue
			}
			set(v, c.capOf(env, n.Rhs[i]))
		}
	case *ast.DeclStmt:
		gd, ok := n.Decl.(*ast.GenDecl)
		if !ok {
			return env
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok || len(vs.Values) != len(vs.Names) {
				continue
			}
			for i, name := range vs.Names {
				if v := c.localVarObj(name); v != nil {
					set(v, c.capOf(env, vs.Values[i]))
				}
			}
		}
	}
	return env
}

// capOf evaluates the capacity state an expression yields.
func (c *collector) capOf(env capEnv, e ast.Expr) capState {
	switch e := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		switch builtinName(e, c.info) {
		case "make":
			if len(e.Args) == 3 { // make([]T, n, cap): capacity thought out
				return capReserved
			}
		case "append":
			if len(e.Args) > 0 {
				return c.capOf(env, e.Args[0])
			}
		}
	case *ast.SliceExpr:
		if zeroHigh(e, c.info) {
			return capReserved // s[:0] reuse keeps s's backing store
		}
	case *ast.Ident:
		if v := c.localVarObj(e); v != nil {
			return env[v]
		}
	}
	return capOther
}

// zeroHigh reports the s[:0] (or s[0:0]) reuse idiom.
func zeroHigh(e *ast.SliceExpr, info *types.Info) bool {
	if e.High == nil {
		return false
	}
	tv, ok := info.Types[e.High]
	if !ok || tv.Value == nil {
		return false
	}
	return tv.Value.String() == "0"
}

// checkAppends flags append calls in n whose destination is not
// provably reserved, skipping nested literals (they run their own
// capacity pass).
func (c *collector) checkAppends(env capEnv, n ast.Node, body *ast.BlockStmt) {
	rh, isRange := n.(*cfg.RangeHeader)
	if isRange {
		n = rh.Range.X
	}
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || builtinName(call, c.info) != "append" || len(call.Args) == 0 {
			return true
		}
		if c.capOf(env, call.Args[0]) == capReserved {
			return true
		}
		c.add("append", call, "append may grow "+render(c.pass.Fset, call.Args[0])+" (no provable capacity)")
		return true
	})
}
