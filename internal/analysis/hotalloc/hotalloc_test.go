package hotalloc_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/hotalloc"
)

// TestHotAlloc runs the analyzer over a three-package fixture: the hot
// root (hotroot), a transitively-reached allocating helper (hotdep)
// and a suppressed helper (hotallow) live in different packages, so
// the session's fact store carries both the call-graph edges and the
// allocation summaries across the boundaries.
func TestHotAlloc(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), hotalloc.Analyzer, "hotdep", "hotallow", "hotroot")
}
