// Package hotalloc enforces the zero-allocation discipline on
// //cs:hotpath-marked code regions. The paper's premise is that stolen
// cycles are only profitable while the per-period overhead c stays
// small against committed work (recurrence 3.6); a heap allocation in
// the episode or Monte-Carlo inner loop is exactly such a hidden c,
// invisible in a code review and unmeasured until a benchmark
// regresses. The analyzer makes the invariant static: a //cs:hotpath
// annotation on a function declares "everything reachable from here is
// allocation-free", the callgraph package supplies the reachable set
// (static edges, CHA-resolved interface calls, cross-package via
// session facts), and every heap-allocating construct in that set is a
// finding:
//
//   - make/new and slice, map or &composite literals — unless the
//     result has constant size and provably never escapes the frame
//   - append whose destination has no provable capacity reservation
//     (a dataflow fixpoint tracks explicit-capacity makes and s[:0]
//     reuse through the CFG)
//   - interface boxing at call sites, assignments and returns
//   - closures that capture variables (worse when they capture a loop
//     variable: one allocation per iteration)
//   - map iteration, fmt calls and string concatenation
//
// Allocations a hot function performs deliberately — cold-start setup,
// free-list miss paths, caller-owned result buffers — are suppressed
// in place with //lint:allow hotalloc <reason>; the suppression is
// applied before the function's allocation summary is exported, so an
// importing package's walk never re-reports a justified site.
// Allocations in functions reached across a package boundary are
// reported at the last local call site on the witness chain (the only
// position the analyzed package can anchor a diagnostic to), naming
// the allocating function and its first sites.
package hotalloc

import (
	"fmt"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/callgraph"
)

// Name is the analyzer's name, the token //lint:allow suppressions
// use.
const Name = "hotalloc"

var Analyzer = &analysis.Analyzer{
	Name: Name,
	Doc:  "flag heap allocations reachable from //cs:hotpath roots (the zero-alloc hot-path budget)",
	Run:  run,
}

// maxSitesInMessage bounds how many allocation sites a cross-package
// finding enumerates; the rest are summarized by count.
const maxSitesInMessage = 2

// info is the per-package shared build: every local function's
// unsuppressed allocation sites, already exported as facts.
type info struct {
	sites map[string][]localSite // function full name -> sites
}

func infoOf(pass *analysis.Pass) (*info, *callgraph.Graph, error) {
	g, err := callgraph.Of(pass)
	if err != nil {
		return nil, nil, err
	}
	v, err := pass.Shared("hotalloc", func() (interface{}, error) {
		return build(pass, g)
	})
	if err != nil {
		return nil, nil, err
	}
	return v.(*info), g, nil
}

func build(pass *analysis.Pass, g *callgraph.Graph) (*info, error) {
	in := &info{sites: make(map[string][]localSite)}
	sup := analysis.CollectSuppressions(pass.Fset, pass.Files)
	packed := make(Sites)
	for _, fi := range g.Flow.Funcs {
		all := collectSites(pass, fi)
		kept := all[:0]
		for _, s := range all {
			if sup.Allowed(pass.Fset, s.pos, Name) {
				continue
			}
			kept = append(kept, s)
		}
		if len(kept) == 0 {
			continue
		}
		name := fi.Obj.FullName()
		in.sites[name] = kept
		sites := make([]AllocSite, len(kept))
		for i, s := range kept {
			sites[i] = s.packed(pass.Fset)
		}
		packed[name] = sites
	}
	data, err := packed.Encode()
	if err != nil {
		return nil, err
	}
	pass.ExportFacts(FactsNamespace, data)
	return in, nil
}

func run(pass *analysis.Pass) error {
	in, g, err := infoOf(pass)
	if err != nil {
		return err
	}
	for _, ba := range g.BadAnnots {
		pass.Reportf(ba.Pos, "malformed //cs:hotpath annotation: %s", ba.Msg)
	}

	// reportedLocal dedups a site reached from several roots; the first
	// root (in declaration order) names it. reportedRemote dedups
	// cross-package findings per (gateway, target) pair.
	reportedLocal := make(map[localSite]bool)
	reportedRemote := make(map[string]bool)

	for _, root := range g.Roots {
		reach := g.ReachableFrom(root.Name)
		for _, name := range reach.Order {
			if g.IsLocal(name) {
				for _, s := range in.sites[name] {
					if reportedLocal[s] {
						continue
					}
					reportedLocal[s] = true
					pass.ReportRangef(s, "hot path %q: %s", root.Label, s.desc)
				}
				continue
			}
			remote := remoteSites(pass, g, name)
			if len(remote) == 0 {
				continue
			}
			edge := reach.Parent[name]
			if edge.Gateway == nil {
				continue // unreachable in practice: a non-local root
			}
			key := shortPos(pass.Fset, edge.Gateway.Call.Pos()) + "|" + name
			if reportedRemote[key] {
				continue
			}
			reportedRemote[key] = true
			pass.ReportRangef(edge.Gateway.Call,
				"hot path %q: call chain %s reaches %s, which allocates: %s",
				root.Label, chainString(reach.Chain(name)), shortName(name), describe(remote))
		}
	}
	return nil
}

// remoteSites returns the exported allocation summary of an imported
// function, empty when it has none (or is outside the analyzed world).
func remoteSites(pass *analysis.Pass, g *callgraph.Graph, name string) []AllocSite {
	path := callgraph.PkgPathOf(name)
	if path == "" || path == pass.Pkg.Path() {
		return nil
	}
	sites, err := DecodeSites(pass.Facts(path, FactsNamespace))
	if err != nil {
		return nil
	}
	return sites[name]
}

// chainString renders a witness chain with short function names:
// "RunEpisode -> Engine.At -> eventQueue.Push".
func chainString(chain []string) string {
	parts := make([]string, len(chain))
	for i, name := range chain {
		parts[i] = shortName(name)
	}
	return strings.Join(parts, " -> ")
}

// shortName compresses a full name for diagnostics: package path down
// to its base, receiver parens kept.
func shortName(full string) string {
	star, rest := "", full
	if strings.HasPrefix(rest, "(") && strings.Contains(rest, ")") {
		inner := rest[1:strings.Index(rest, ")")]
		method := rest[strings.Index(rest, ")")+1:]
		if strings.HasPrefix(inner, "*") {
			star, inner = "*", inner[1:]
		}
		return "(" + star + base(inner) + ")" + method
	}
	return base(rest)
}

func base(qualified string) string {
	if i := strings.LastIndex(qualified, "/"); i >= 0 {
		return qualified[i+1:]
	}
	return qualified
}

func describe(sites []AllocSite) string {
	var b strings.Builder
	for i, s := range sites {
		if i == maxSitesInMessage {
			fmt.Fprintf(&b, " (+%d more)", len(sites)-maxSitesInMessage)
			break
		}
		if i > 0 {
			b.WriteString("; ")
		}
		fmt.Fprintf(&b, "%s at %s", s.Desc, s.Pos)
	}
	return b.String()
}
