// Package hotroot is the golden fixture's hot package: a //cs:hotpath
// root whose reachable set crosses two package boundaries (an
// allocating dependency and a suppressed one).
package hotroot

import (
	"fmt"

	"hotallow"
	"hotdep"
)

// Trial is the fixture's Monte-Carlo-style inner loop: everything it
// reaches is held to the zero-allocation budget.
//
//cs:hotpath trial
func Trial(xs []float64, weights map[string]float64) float64 {
	var acc []float64
	sum := 0.0
	window := make([]float64, 4)
	tmp := make([]float64, 0, 8)
	square := func(v float64) float64 { return v * v }
	for _, x := range xs {
		acc = append(acc, x) // want `hot path "trial": append may grow acc \(no provable capacity\)`
		tmp = append(tmp, x)
		window[0] = x
		sum += square(x) + window[0]
	}
	for name, w := range weights { // want `hot path "trial": map iteration \(hash-order walk\) on the hot path`
		if w < 0 {
			fmt.Println("negative weight", name) // want `hot path "trial": fmt\.Println allocates \(formats through interfaces\)`
		}
		sum += w
	}
	probes := make([]func() float64, 0, 4)
	for i := range xs {
		probes = append(probes, func() float64 { return xs[i] }) // want `hot path "trial": closure captures a loop variable \(allocates per iteration\)`
	}
	for _, p := range probes {
		sum += p()
	}
	var trace interface{}
	trace = sum // want `hot path "trial": sum boxed into interface\{\}`
	_ = trace
	seed := hotdep.Fill(len(xs)) // want `hot path "trial": call chain hotroot\.Trial -> hotdep\.Fill reaches hotdep\.Fill, which allocates: make\(\[\]float64, n\) allocates at dep\.go:\d+`
	scratch := hotallow.Scratch(16)
	scratch = scratch[:0]
	for _, s := range seed {
		scratch = append(scratch, s)
	}
	return sum + float64(len(scratch))
}
