package hotroot

/* cs:hotpath two tokens */ // want `malformed //cs:hotpath annotation: want at most one label, got 2 tokens`
func Noisy()                {}

// Cold allocates freely, but no root reaches it: no finding.
func Cold(n int) []float64 {
	out := make([]float64, n)
	return out
}

// Setup allocates on the hot path deliberately; the local suppression
// keeps it silent.
//
//cs:hotpath
func Setup(n int) {
	buf := make([]float64, n) //lint:allow hotalloc cold-start setup, runs once per episode
	for i := range buf {
		buf[i] = 0
	}
	sink = buf
}

var sink []float64

func floating() {
	/* cs:hotpath */ // want `malformed //cs:hotpath annotation: cs:hotpath must sit in a function declaration's doc comment`
}
