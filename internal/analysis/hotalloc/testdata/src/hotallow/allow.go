// Package hotallow is the fixture's justified-allocation dependency:
// its only allocation site carries a //lint:allow suppression. The
// suppression is applied before the package's summary is exported, so
// an importing hot package never re-reports the site.
package hotallow

// Scratch returns a caller-owned scratch buffer; the allocation is the
// caller's explicit request, amortized by s[:0] reuse.
func Scratch(n int) []float64 {
	return make([]float64, n) //lint:allow hotalloc caller-owned buffer, reused across periods
}
