// Package hotdep is the fixture's transitively-reached dependency: it
// allocates, carries no annotation of its own, and is reported only
// from the importing package's hot root — via the allocation summary
// this package exports as facts. No findings land here (the package
// declares no //cs:hotpath roots).
package hotdep

// Fill returns a fresh buffer of n samples — an allocation every
// caller inherits.
func Fill(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = 1
	}
	return out
}
