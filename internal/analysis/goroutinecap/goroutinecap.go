// Package goroutinecap flags mutable state shared with goroutines
// without synchronization discipline: a variable captured by a
// go-closure (or handed to a helper whose flow summary says it is
// written in a goroutine the helper spawns) while other goroutines —
// including the spawner — can still touch it.
//
// Blessed disciplines the analyzer recognizes and stays silent on:
//   - channel, sync.* and sync/atomic-typed state (including accesses
//     through sync/atomic calls and atomic.Int64-style methods);
//   - partitioned writes base[i] where the index is goroutine-local or
//     a per-iteration loop variable, the disjoint-slot reducer idiom;
//   - spawner access separated from the goroutine by a barrier — a
//     WaitGroup.Wait or a channel receive between the spawn and the
//     access;
//   - helpers whose summary joins every goroutine they spawn before
//     returning (synchronous from the caller's point of view).
//
// Known blind spot, chosen deliberately: mutation hidden behind a
// pointer-receiver method call on a captured value counts as a read
// (the engine does not model receiver mutation), so a method-based
// race can pass. The -race CI job backstops that side.
package goroutinecap

import (
	"go/token"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/analysis/flow"
)

var Analyzer = &analysis.Analyzer{
	Name: "goroutinecap",
	Doc:  "flag mutable state captured by goroutines without atomic/mutex/channel discipline",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	in, err := flow.Of(pass)
	if err != nil {
		return err
	}
	for _, fi := range in.Funcs {
		checkFunc(pass, in, fi)
	}
	return nil
}

// disciplined reports whether t is a type whose sharing is already
// mediated: channels, sync.* and sync/atomic types (behind any number
// of pointers).
func disciplined(t types.Type) bool {
	for {
		p, ok := t.Underlying().(*types.Pointer)
		if !ok {
			break
		}
		t = p.Elem()
	}
	if _, ok := t.Underlying().(*types.Chan); ok {
		return true
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	pkg := named.Obj().Pkg()
	return pkg != nil && (pkg.Path() == "sync" || pkg.Path() == "sync/atomic")
}

// writerSite is one place v is written by a goroutine: a spawned
// literal that writes it, or a call whose summary writes it in a
// goroutine that outlives the call.
type writerSite struct {
	pos, end token.Pos
	inLoop   bool
	spawn    *flow.Spawn // nil for call sites
}

func checkFunc(pass *analysis.Pass, in *flow.Info, fi *flow.FuncInfo) {
	var vars []*types.Var
	seen := make(map[*types.Var]bool)
	for _, u := range fi.Uses {
		if !seen[u.Var] {
			seen[u.Var] = true
			vars = append(vars, u.Var)
		}
	}
	for _, v := range vars {
		if disciplined(v.Type()) {
			continue
		}
		home := fi.HomeSpawn(v)
		uses := fi.UsesOf(v)

		if fi.IsLoopVar(v) {
			// Per-iteration semantics make captured loop variables safe
			// to read; a write from the goroutine mutates only this
			// iteration's copy, which is almost certainly a bug.
			for _, u := range uses {
				if u.Spawn != home && u.Spawn != nil && u.Write && !u.Atomic {
					pass.Reportf(u.Pos,
						"write to loop variable %q inside a goroutine mutates only this iteration's copy; send the result on a channel or write a per-worker slot instead",
						v.Name())
					break
				}
			}
			continue
		}

		spawnUses := make(map[*flow.Spawn][]*flow.Use)
		var outer []*flow.Use
		for _, u := range uses {
			if u.Spawn != home && u.Spawn != nil {
				spawnUses[u.Spawn] = append(spawnUses[u.Spawn], u)
			} else {
				outer = append(outer, u)
			}
		}

		var writers []writerSite
		for _, s := range fi.Spawns {
			for _, u := range spawnUses[s] {
				if goroutineWrite(in, fi, u, s) {
					writers = append(writers, writerSite{pos: s.Go.Pos(), end: s.Go.End(), inLoop: s.InLoopFor(v), spawn: s})
					break
				}
			}
		}
		var plain []*flow.Use
		for _, u := range outer {
			if u.Arg != nil && u.Arg.Index >= 0 {
				if sum, ok := in.SummaryOf(u.Arg.Site.Callee); ok {
					if !sum.Joins && sum.Param(u.Arg.Index)&flow.WrittenInGoroutine != 0 {
						site := u.Arg.Site
						writers = append(writers, writerSite{pos: site.Call.Pos(), end: site.Call.End(), inLoop: site.InLoopFor(v)})
						continue
					}
					// Joined or read-only callees behave synchronously.
				}
			}
			plain = append(plain, u)
		}

		switch {
		case len(writers) == 0:
			// Reads in a goroutine racing a later spawner write.
			for _, s := range fi.Spawns {
				if len(spawnUses[s]) == 0 {
					continue
				}
				for _, u := range plain {
					if u.Write && !u.Atomic && u.Pos > s.Go.End() && !fi.BarrierBetween(s.Go.End(), u.Pos) {
						pass.Reportf(u.Pos,
							"%q is written here while a goroutine spawned earlier reads it, with no barrier between: synchronize or hand the value over a channel",
							v.Name())
						break
					}
				}
			}
		case writersInLoop(writers) != nil:
			w := writersInLoop(writers)
			pass.Reportf(w.pos,
				"%q is written by goroutines spawned in a loop without synchronization: every worker races on it; use per-worker slots, a channel, or sync/atomic",
				v.Name())
		case len(writers) >= 2:
			pass.Reportf(writers[1].pos,
				"%q is written by %d goroutine sites without synchronization: use per-worker slots, a channel, or sync/atomic",
				v.Name(), len(writers))
		default:
			w := writers[0]
			// Another goroutine touching it concurrently.
			reported := false
			for _, s := range fi.Spawns {
				if s == w.spawn || len(spawnUses[s]) == 0 {
					continue
				}
				lo, hi := w.end, s.Go.Pos()
				if hi < lo {
					lo, hi = s.Go.End(), w.pos
				}
				if !fi.BarrierBetween(lo, hi) {
					pass.Reportf(max(w.pos, s.Go.Pos()),
						"%q is accessed by multiple goroutines without synchronization: one of them writes it",
						v.Name())
					reported = true
					break
				}
			}
			if reported {
				break
			}
			// The spawner touching it while the writer may still run.
			for _, u := range plain {
				if u.Pos > w.pos && !fi.BarrierBetween(w.end, u.Pos) {
					pass.Reportf(u.Pos,
						"%q is accessed here while a goroutine that writes it may still be running: wait on the WaitGroup or receive from the channel first",
						v.Name())
					break
				}
			}
		}
	}
}

func writersInLoop(ws []writerSite) *writerSite {
	for i := range ws {
		if ws[i].inLoop {
			return &ws[i]
		}
	}
	return nil
}

// goroutineWrite reports whether use u (inside spawn s) mutates shared
// state: a direct non-atomic, non-partitioned write, or an argument
// handoff to a callee that writes it.
func goroutineWrite(in *flow.Info, fi *flow.FuncInfo, u *flow.Use, s *flow.Spawn) bool {
	if u.Write && !u.Atomic {
		if u.Part != nil && privateIndex(fi, u.Part.Index, s) {
			return false
		}
		return true
	}
	if u.Arg != nil && u.Arg.Index >= 0 {
		if fl, ok := in.ArgFlow(u.Arg.Site, u.Arg.Index); ok {
			return fl&(flow.WrittenDirect|flow.WrittenInGoroutine) != 0
		}
	}
	return false
}

// privateIndex reports whether the partition index is private to the
// goroutine or iteration: declared inside the spawned literal, or a
// per-iteration loop variable.
func privateIndex(fi *flow.FuncInfo, idx *types.Var, s *flow.Spawn) bool {
	if fi.IsLoopVar(idx) {
		return true
	}
	return fi.HomeSpawn(idx) == s
}
