package goroutinecap_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/goroutinecap"
)

func TestGoroutineCap(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), goroutinecap.Analyzer, "gcap")
}
