// Fixture for the goroutinecap analyzer: mutable state shared with
// goroutines must use atomic/mutex/channel discipline.
package gcap

import (
	"sync"
	"sync/atomic"
)

// True positive: a plain counter incremented by every worker.
func counterRace(n int) int {
	count := 0
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() { // want "written by goroutines spawned in a loop"
			defer wg.Done()
			count++
		}()
	}
	wg.Wait()
	return count
}

// True positive: two goroutines write the same variable.
func twoWriters() int {
	n := 0
	done := make(chan bool)
	go func() { n = 1; done <- true }()
	go func() { n = 2; done <- true }() // want "written by 2 goroutine sites"
	<-done
	<-done
	return n
}

// True positive: the spawner reads before the writing goroutine is
// known to be done.
func readWhileRunning() int {
	n := 0
	done := make(chan bool)
	go func() { n = 42; done <- true }()
	m := n // want "while a goroutine that writes it may still be running"
	<-done
	return m
}

// True positive: writing the per-iteration loop variable from the
// goroutine changes only this iteration's copy.
func loopVarWrite() {
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			i = i * 2 // want "loop variable \"i\" inside a goroutine"
		}()
	}
	wg.Wait()
}

// addAsync spawns a goroutine that writes *p and does not join it;
// callers inherit the hazard through its flow summary.
func addAsync(p *int, done chan bool) {
	go func() {
		*p++
		done <- true
	}()
}

// True positive (interprocedural): the helper's goroutines all write n.
func viaHelper() int {
	n := 0
	done := make(chan bool, 4)
	for i := 0; i < 4; i++ {
		addAsync(&n, done) // want "written by goroutines spawned in a loop"
	}
	for i := 0; i < 4; i++ {
		<-done
	}
	return n
}

// Non-finding: disjoint slots indexed by a goroutine-local parameter,
// merged after the barrier.
func partitioned(n int) []int {
	results := make([]int, n)
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			results[w] = w * w
		}(w)
	}
	wg.Wait()
	return results
}

// Non-finding: results flow over a channel; the accumulator stays in
// the spawner.
func viaChannel(n int) int {
	out := make(chan int, n)
	for i := 0; i < n; i++ {
		go func(i int) { out <- i * i }(i)
	}
	sum := 0
	for j := 0; j < n; j++ {
		sum += <-out
	}
	return sum
}

// Non-finding: sync/atomic discipline.
func viaAtomic(n int) int64 {
	var total int64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			atomic.AddInt64(&total, 1)
		}()
	}
	wg.Wait()
	return total
}

// Non-finding: a single writer joined before the spawner reads.
func joined() int {
	n := 0
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		n = 7
	}()
	wg.Wait()
	return n
}

// fillJoined writes *p in a goroutine but joins it before returning,
// so callers see a synchronous helper.
func fillJoined(p *int) {
	done := make(chan bool)
	go func() {
		*p = 3
		done <- true
	}()
	<-done
}

// Non-finding (interprocedural): the callee joins its goroutine.
func callerOfJoined() int {
	n := 0
	fillJoined(&n)
	return n
}

// Non-finding (suppressed): deliberate benign race, annotated.
func allowedRace() int {
	n := 0
	done := make(chan bool)
	go func() { n = 1; done <- true }()
	//lint:allow goroutinecap fixture demonstrates suppression
	m := n
	<-done
	return m
}
