package dim

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/analysis/cfg"
	"repro/internal/analysis/dataflow"
)

// An Env is the abstract state of one program point: the dimension of
// every function-local variable the analysis has learned something
// about. Declared (annotated) variables are deliberately absent —
// their dimension is pinned in the engine's object map and consulted
// first — and Unknown entries are normalized away, so nil and empty
// environments join and compare cheaply.
type Env map[*types.Var]Dim

// Clone returns a private copy of e for statement-by-statement
// advancement with Step; cloning nil yields an empty environment.
func (e Env) Clone() Env { return cloneEnv(e) }

func cloneEnv(e Env) Env {
	out := make(Env, len(e))
	for v, d := range e {
		out[v] = d
	}
	return out
}

// envLattice is the pointwise lift of the Dim lattice; a variable
// missing from one side is Unknown there, so Join keeps the other
// side's knowledge.
type envLattice struct{}

func (envLattice) Bottom() Env { return nil }
func (envLattice) Join(a, b Env) Env {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	out := make(Env, len(a)+len(b))
	for v, d := range a {
		out[v] = d
	}
	for v, d := range b {
		out[v] = Join(out[v], d)
	}
	return out
}
func (envLattice) Equal(a, b Env) bool {
	if len(a) != len(b) {
		return false
	}
	for v, d := range a {
		if b[v] != d {
			return false
		}
	}
	return true
}

// Widen is the identity: the per-variable lattice has height three
// and the variable set is finite, so joins alone converge.
func (envLattice) Widen(_, next Env) Env { return next }

// A FuncResult is the dimension fixpoint of one function body.
type FuncResult struct {
	Graph *cfg.Graph
	// In holds the abstract environment on entry to each block; walk
	// the block's nodes with Info.Step to advance it statement by
	// statement.
	In map[*cfg.Block]Env
}

// Info is the dimension engine's view of one analyzed package.
type Info struct {
	Pkg       *types.Package
	Fset      *token.FileSet
	TypesInfo *types.Info
	// BadAnnots lists malformed //cs:unit annotations for unitflow to
	// report.
	BadAnnots []BadAnnot

	pass     *analysis.Pass
	objDims  map[*types.Var]Dim    // annotated fields, params, locals, package vars
	varKeys  map[*types.Var]string // facts key for exported fields / package vars
	funcDims map[*types.Func]FuncDims
	decls    []funcRec
	imported map[string]Facts
	memo     map[*ast.FuncDecl]*FuncResult
	memoErr  map[*ast.FuncDecl]error
}

type funcRec struct {
	fd  *ast.FuncDecl
	obj *types.Func
}

const sharedKey = "dim"

// Of returns the dimension Info for the pass's package, building it
// on first request and sharing it between the dimension-based
// analyzers of the same run. Building also exports the package's
// dimension facts for packages analyzed later in the session.
func Of(pass *analysis.Pass) (*Info, error) {
	v, err := pass.Shared(sharedKey, func() (interface{}, error) {
		return build(pass)
	})
	if err != nil {
		return nil, err
	}
	return v.(*Info), nil
}

func build(pass *analysis.Pass) (*Info, error) {
	in := &Info{
		Pkg:       pass.Pkg,
		Fset:      pass.Fset,
		TypesInfo: pass.TypesInfo,
		pass:      pass,
		objDims:   make(map[*types.Var]Dim),
		varKeys:   make(map[*types.Var]string),
		funcDims:  make(map[*types.Func]FuncDims),
		imported:  make(map[string]Facts),
		memo:      make(map[*ast.FuncDecl]*FuncResult),
		memoErr:   make(map[*ast.FuncDecl]error),
	}
	in.collectAnnots()
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			in.decls = append(in.decls, funcRec{fd, obj})
		}
	}
	// Pre-seed local declarations from the built-in table so known
	// APIs keep their dimensions even when the inference fixpoint
	// records an entry for them; explicit annotations win per slot.
	for _, rec := range in.decls {
		bd, ok := builtinFuncs[rec.obj.FullName()]
		if !ok {
			continue
		}
		merged := mergeFuncDims(in.funcDims[rec.obj], bd)
		in.funcDims[rec.obj] = merged
		in.seedParamDims(rec.obj, merged)
	}
	// Snapshot annotated result slots: inference fills the gaps but
	// never overrides a declaration.
	annotated := make(map[*types.Func][]bool)
	for obj, fd := range in.funcDims {
		mask := make([]bool, len(fd.Results))
		for i, d := range fd.Results {
			mask[i] = d != Unknown
		}
		annotated[obj] = mask
	}
	// Fixpoint over intra-package calls: result dimensions only grow
	// (Join is monotone over a finite lattice), so iteration
	// terminates; the bound is a safety net.
	for iter := 0; iter < 8; iter++ {
		changed := false
		for _, rec := range in.decls {
			res, err := in.analyzeFunc(rec.fd)
			if err != nil {
				continue // over-long body: skip inference, keep annotations
			}
			inferred := in.inferReturns(rec.fd, rec.obj, res)
			if inferred == nil {
				continue
			}
			cur := in.funcDims[rec.obj]
			next := cur
			if len(next.Results) < len(inferred) {
				next.Results = append(make([]Dim, 0, len(inferred)), next.Results...)
				next.Results = append(next.Results, make([]Dim, len(inferred)-len(next.Results))...)
			}
			mask := annotated[rec.obj]
			for i, d := range inferred {
				if i < len(mask) && mask[i] {
					continue
				}
				next.Results[i] = Join(next.Results[i], d)
			}
			if !next.equal(cur) {
				in.funcDims[rec.obj] = next
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	facts := Facts{Funcs: make(map[string]FuncDims), Vars: make(map[string]Dim)}
	for obj, fd := range in.funcDims {
		if !fd.empty() {
			facts.Funcs[obj.FullName()] = fd
		}
	}
	for v, key := range in.varKeys {
		facts.Vars[key] = in.objDims[v]
	}
	data, err := facts.Encode()
	if err != nil {
		return nil, err
	}
	pass.ExportFacts(FactsNamespace, data)
	return in, nil
}

// mergeFuncDims overlays base's dimensions into the Unknown slots of
// primary, growing the slices as needed.
func mergeFuncDims(primary, base FuncDims) FuncDims {
	merge := func(p, b []Dim) []Dim {
		if len(b) > len(p) {
			p = append(append(make([]Dim, 0, len(b)), p...), make([]Dim, len(b)-len(p))...)
		}
		for i := range p {
			if p[i] == Unknown && i < len(b) {
				p[i] = b[i]
			}
		}
		return p
	}
	return FuncDims{
		Params:  merge(primary.Params, base.Params),
		Results: merge(primary.Results, base.Results),
	}
}

// seedParamDims pins fd's parameter dimensions onto the signature's
// parameter objects so body analyses see them.
func (in *Info) seedParamDims(obj *types.Func, fd FuncDims) {
	sig, ok := obj.Type().(*types.Signature)
	if !ok {
		return
	}
	seed := func(v *types.Var, d Dim) {
		if v != nil && d != Unknown {
			in.objDims[v] = d
		}
	}
	i := 0
	if sig.Recv() != nil {
		seed(sig.Recv(), fd.Param(0))
		i = 1
	}
	for j := 0; j < sig.Params().Len() && i+j < len(fd.Params); j++ {
		seed(sig.Params().At(j), fd.Params[i+j])
	}
}

// Funcs returns the package's analyzed function declarations.
func (in *Info) Funcs() []*ast.FuncDecl {
	out := make([]*ast.FuncDecl, len(in.decls))
	for i, rec := range in.decls {
		out[i] = rec.fd
	}
	return out
}

// Analyze returns the dimension fixpoint for one of the package's
// function declarations, memoized across analyzers.
func (in *Info) Analyze(fd *ast.FuncDecl) (*FuncResult, error) {
	if res, ok := in.memo[fd]; ok {
		return res, in.memoErr[fd]
	}
	res, err := in.analyzeFunc(fd)
	in.memo[fd] = res
	in.memoErr[fd] = err
	return res, err
}

func (in *Info) analyzeFunc(fd *ast.FuncDecl) (*FuncResult, error) {
	g := cfg.Build(fd.Body)
	res, err := dataflow.Forward(g, dataflow.Problem[Env]{
		Lattice: envLattice{},
		Entry:   Env{},
		Transfer: func(b *cfg.Block, in0 Env) Env {
			env := cloneEnv(in0)
			for _, n := range b.Nodes {
				in.Step(env, n)
			}
			return env
		},
	})
	if err != nil {
		return nil, err
	}
	return &FuncResult{Graph: g, In: res.In}, nil
}

// inferReturns joins the dimension of every returned expression, per
// result position; nil when the function has no results.
func (in *Info) inferReturns(fd *ast.FuncDecl, obj *types.Func, res *FuncResult) []Dim {
	sig := obj.Type().(*types.Signature)
	n := sig.Results().Len()
	if n == 0 {
		return nil
	}
	acc := make([]Dim, n)
	for _, b := range res.Graph.Blocks {
		env := cloneEnv(res.In[b])
		for _, node := range b.Nodes {
			if ret, ok := node.(*ast.ReturnStmt); ok && len(ret.Results) == n {
				for i, r := range ret.Results {
					acc[i] = Join(acc[i], in.ExprDim(env, r))
				}
			}
			in.Step(env, node)
		}
	}
	return acc
}

// Step advances env across one cfg block node. env must be private to
// the caller (it is mutated in place). Unknown results delete the
// binding, so environments never carry bottom entries.
func (in *Info) Step(env Env, n ast.Node) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		in.stepAssign(env, n)
	case *ast.DeclStmt:
		gd, ok := n.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			if len(vs.Values) == len(vs.Names) {
				for i, name := range vs.Names {
					in.setEnv(env, name, in.ExprDim(env, vs.Values[i]))
				}
			} else if len(vs.Values) == 1 && len(vs.Names) > 1 {
				in.stepTuple(env, identExprs(vs.Names), vs.Values[0])
			}
		}
	case *cfg.RangeHeader:
		in.stepRange(env, n.Range)
	}
}

func identExprs(ids []*ast.Ident) []ast.Expr {
	out := make([]ast.Expr, len(ids))
	for i, id := range ids {
		out[i] = id
	}
	return out
}

func (in *Info) stepAssign(env Env, as *ast.AssignStmt) {
	if len(as.Lhs) > 1 && len(as.Rhs) == 1 {
		in.stepTuple(env, as.Lhs, as.Rhs[0])
		return
	}
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, lhs := range as.Lhs {
		rhs := as.Rhs[i]
		var d Dim
		switch as.Tok {
		case token.ASSIGN, token.DEFINE:
			d = in.ExprDim(env, rhs)
		case token.ADD_ASSIGN, token.SUB_ASSIGN:
			d = Join(in.ExprDim(env, lhs), in.ExprDim(env, rhs))
		case token.MUL_ASSIGN:
			d = Mul(in.ExprDim(env, lhs), in.ExprDim(env, rhs))
		case token.QUO_ASSIGN:
			d = Div(in.ExprDim(env, lhs), in.ExprDim(env, rhs))
		default:
			d = Unknown
		}
		in.setEnv(env, lhs, d)
	}
}

// stepTuple handles `a, b := f()` and the comma-ok forms.
func (in *Info) stepTuple(env Env, lhs []ast.Expr, rhs ast.Expr) {
	rhs = ast.Unparen(rhs)
	if call, ok := rhs.(*ast.CallExpr); ok {
		for i, l := range lhs {
			in.setEnv(env, l, in.callDim(env, call, i))
		}
		return
	}
	// v, ok := m[k] / x.(T) / <-ch: the value keeps the source's
	// (element) dimension, the bool is dimensionless noise.
	for i, l := range lhs {
		if i == 0 {
			in.setEnv(env, l, in.ExprDim(env, rhs))
		} else {
			in.setEnv(env, l, Unknown)
		}
	}
}

func (in *Info) stepRange(env Env, rs *ast.RangeStmt) {
	xd := in.ExprDim(env, rs.X)
	xt := in.TypesInfo.TypeOf(rs.X)
	keyDim, valDim := Unknown, xd
	if xt != nil {
		switch xt.Underlying().(type) {
		case *types.Slice, *types.Array, *types.Pointer:
			keyDim = Count
		case *types.Basic:
			keyDim = Count // string bytes or range-over-int
			valDim = Unknown
		case *types.Chan:
			keyDim, valDim = xd, Unknown // key is the element
		}
	}
	if rs.Key != nil {
		in.setEnv(env, rs.Key, keyDim)
	}
	if rs.Value != nil {
		in.setEnv(env, rs.Value, valDim)
	}
}

// setEnv binds the variable named by e (when it is a plain local
// identifier without a pinned declaration) to d.
func (in *Info) setEnv(env Env, e ast.Expr, d Dim) {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	v := in.varOf(id)
	if v == nil || v.IsField() {
		return
	}
	if _, pinned := in.objDims[v]; pinned {
		return
	}
	if d == Unknown {
		delete(env, v)
	} else {
		env[v] = d
	}
}

func (in *Info) varOf(id *ast.Ident) *types.Var {
	if v, ok := in.TypesInfo.Defs[id].(*types.Var); ok {
		return v
	}
	if v, ok := in.TypesInfo.Uses[id].(*types.Var); ok {
		return v
	}
	return nil
}

// ExprDim evaluates the abstract dimension of e under env. For
// collection-typed expressions the result names the element
// dimension, matching the annotation convention.
func (in *Info) ExprDim(env Env, e ast.Expr) Dim {
	e = ast.Unparen(e)
	switch e := e.(type) {
	case *ast.Ident:
		v := in.varOf(e)
		if v == nil {
			return Unknown
		}
		if d, ok := in.objDims[v]; ok {
			return d
		}
		return env[v]
	case *ast.SelectorExpr:
		return in.selectorDim(e)
	case *ast.CallExpr:
		return in.callDim(env, e, 0)
	case *ast.BinaryExpr:
		x, y := in.ExprDim(env, e.X), in.ExprDim(env, e.Y)
		switch e.Op {
		case token.ADD, token.SUB:
			return Join(x, y)
		case token.MUL:
			return Mul(x, y)
		case token.QUO:
			return Div(x, y)
		}
		return Unknown
	case *ast.UnaryExpr:
		if e.Op == token.SUB || e.Op == token.ADD {
			return in.ExprDim(env, e.X)
		}
		return Unknown
	case *ast.IndexExpr:
		return in.ExprDim(env, e.X)
	case *ast.StarExpr:
		return in.ExprDim(env, e.X)
	}
	return Unknown
}

// StorageDim returns the declared dimension of the storage location
// named by e — an annotated variable, parameter, package variable or
// struct field — Unknown when the location carries no declaration.
// Unlike ExprDim it never consults flow-inferred state, so it is the
// authoritative side of assignment and argument checks.
func (in *Info) StorageDim(e ast.Expr) Dim {
	e = ast.Unparen(e)
	switch e := e.(type) {
	case *ast.Ident:
		v := in.varOf(e)
		if v == nil {
			return Unknown
		}
		if d, ok := in.objDims[v]; ok {
			return d
		}
		if v.IsField() {
			// Composite-literal key in another package's struct: no
			// selection to lean on, but the literal's type names it.
			return Unknown
		}
		return in.pkgVarDim(v)
	case *ast.SelectorExpr:
		return in.selectorDim(e)
	case *ast.IndexExpr:
		return in.StorageDim(e.X)
	case *ast.StarExpr:
		return in.StorageDim(e.X)
	}
	return Unknown
}

// FieldDim returns the declared dimension of field fv of the named
// struct type owner (which supplies the facts key for imported
// packages).
func (in *Info) FieldDim(fv *types.Var, owner *types.Named) Dim {
	if d, ok := in.objDims[fv]; ok {
		return d
	}
	if fv.Pkg() == nil || fv.Pkg() == in.Pkg || owner == nil {
		return Unknown
	}
	facts := in.factsFor(fv.Pkg().Path())
	return facts.Vars[owner.Obj().Name()+"."+fv.Name()]
}

func (in *Info) selectorDim(sel *ast.SelectorExpr) Dim {
	if s, ok := in.TypesInfo.Selections[sel]; ok && s.Kind() == types.FieldVal {
		fv, _ := s.Obj().(*types.Var)
		if fv == nil {
			return Unknown
		}
		return in.FieldDim(fv, NamedOf(s.Recv()))
	}
	if v, ok := in.TypesInfo.Uses[sel.Sel].(*types.Var); ok {
		return in.pkgVarDim(v)
	}
	return Unknown
}

func (in *Info) pkgVarDim(v *types.Var) Dim {
	if d, ok := in.objDims[v]; ok {
		return d
	}
	if v.Pkg() == nil || v.Pkg() == in.Pkg || v.IsField() {
		return Unknown
	}
	if v.Parent() == nil || v.Parent() != v.Pkg().Scope() {
		return Unknown
	}
	return in.factsFor(v.Pkg().Path()).Vars[v.Name()]
}

// NamedOf unwraps pointers to the named type underneath, nil when t
// is not (a pointer to) a named type. Analyzers use it to build facts
// keys for struct-field lookups.
func NamedOf(t types.Type) *types.Named {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

func (in *Info) callDim(env Env, call *ast.CallExpr, resultIndex int) Dim {
	// Conversions preserve the operand's dimension: float64(t) is
	// still a time.
	if tv, ok := in.TypesInfo.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		return in.ExprDim(env, call.Args[0])
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := in.TypesInfo.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "len", "cap":
				return Count
			}
			return Unknown
		}
	}
	fn, _ := in.Callee(call)
	if fn == nil {
		return Unknown
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "math" {
		switch fn.Name() {
		case "Min", "Max":
			if len(call.Args) == 2 {
				return Join(in.ExprDim(env, call.Args[0]), in.ExprDim(env, call.Args[1]))
			}
		case "Abs", "Floor", "Ceil", "Trunc", "Round":
			if len(call.Args) == 1 {
				return in.ExprDim(env, call.Args[0])
			}
		}
		return Unknown
	}
	return in.FuncDimsOf(fn).Result(resultIndex)
}

// Callee resolves a call's static target; method reports whether the
// receiver occupies normalized argument index 0.
func (in *Info) Callee(call *ast.CallExpr) (fn *types.Func, method bool) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := in.TypesInfo.Uses[fun].(*types.Func); ok {
			return f, false
		}
	case *ast.SelectorExpr:
		if sel, ok := in.TypesInfo.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				return f, true
			}
		} else if f, ok := in.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
			return f, false
		}
	}
	return nil, false
}

// FuncDimsOf returns fn's declared-or-inferred dimensions: from this
// package's fixpoint for local functions, then the built-in table of
// known APIs, then imported session facts.
func (in *Info) FuncDimsOf(fn *types.Func) FuncDims {
	if fn == nil {
		return FuncDims{}
	}
	if o := fn.Origin(); o != nil {
		fn = o
	}
	if fd, ok := in.funcDims[fn]; ok {
		return fd
	}
	full := fn.FullName()
	if fd, ok := builtinFuncs[full]; ok {
		return fd
	}
	if fn.Pkg() == nil || fn.Pkg() == in.Pkg {
		return FuncDims{}
	}
	return in.factsFor(fn.Pkg().Path()).Funcs[full]
}

func (in *Info) factsFor(path string) Facts {
	if f, ok := in.imported[path]; ok {
		return f
	}
	f, err := DecodeFacts(in.pass.Facts(path, FactsNamespace))
	if err != nil {
		f = Facts{Funcs: map[string]FuncDims{}, Vars: map[string]Dim{}}
	}
	in.imported[path] = f
	return f
}
