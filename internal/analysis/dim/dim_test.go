package dim_test

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/dim"
)

// probe runs the dimension engine over src inside a session and
// returns the resulting Info.
func probe(t *testing.T, sess *analysis.Session, path, src string, imp types.Importer) (*dim.Info, *types.Package) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, path+".go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(path, fset, []*ast.File{file}, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	var got *dim.Info
	an := &analysis.Analyzer{
		Name: "probe",
		Doc:  "captures dim info",
		Run: func(pass *analysis.Pass) error {
			in, err := dim.Of(pass)
			if err != nil {
				return err
			}
			got = in
			return nil
		},
	}
	if _, err := sess.Run(fset, []*ast.File{file}, pkg, info, []*analysis.Analyzer{an}); err != nil {
		t.Fatalf("run: %v", err)
	}
	if got == nil {
		t.Fatal("probe analyzer did not run")
	}
	return got, pkg
}

func funcDimsOf(t *testing.T, in *dim.Info, pkg *types.Package, name string) dim.FuncDims {
	t.Helper()
	fn, ok := pkg.Scope().Lookup(name).(*types.Func)
	if !ok {
		t.Fatalf("no function %q in %s", name, pkg.Path())
	}
	return in.FuncDimsOf(fn)
}

func TestAlgebra(t *testing.T) {
	cases := []struct {
		op   string
		a, b dim.Dim
		want dim.Dim
	}{
		{"join", dim.Unknown, dim.Time, dim.Time},
		{"join", dim.Time, dim.Time, dim.Time},
		{"join", dim.Time, dim.Work, dim.Top},
		{"join", dim.Top, dim.Time, dim.Top},
		{"mul", dim.Probability, dim.Probability, dim.Probability},
		{"mul", dim.Probability, dim.Work, dim.Work},
		{"mul", dim.Time, dim.Probability, dim.Time},
		{"mul", dim.Rate, dim.Time, dim.Probability},
		{"mul", dim.Count, dim.Time, dim.Time},
		{"mul", dim.Time, dim.Unknown, dim.Unknown},
		{"mul", dim.Time, dim.Work, dim.Top},
		{"div", dim.Time, dim.Time, dim.Dimensionless},
		{"div", dim.Probability, dim.Time, dim.Rate},
		{"div", dim.Probability, dim.Rate, dim.Time},
		{"div", dim.Work, dim.Count, dim.Work},
		{"div", dim.Unknown, dim.Time, dim.Unknown},
		{"div", dim.Work, dim.Rate, dim.Top},
	}
	for _, tc := range cases {
		var got dim.Dim
		switch tc.op {
		case "join":
			got = dim.Join(tc.a, tc.b)
		case "mul":
			got = dim.Mul(tc.a, tc.b)
		case "div":
			got = dim.Div(tc.a, tc.b)
		}
		if got != tc.want {
			t.Errorf("%s(%v, %v) = %v, want %v", tc.op, tc.a, tc.b, got, tc.want)
		}
	}
}

const engineSrc = `package p

type sched struct {
	period float64 //cs:unit time
	steps  int     //cs:unit count
}

//cs:unit t=time c=time return=work
func posSub(t, c float64) float64 {
	if t < c {
		return 0
	}
	return t - c
}

func wrap(t, c float64) float64 { return posSub(t, c) }

//cs:unit p=probability
func expected(t, c, p float64) float64 {
	w := posSub(t, c)
	return w * p
}

func mixed(s sched, b bool) float64 {
	x := s.period
	if b {
		x = float64(s.steps)
	}
	return x
}

type life interface {
	//cs:unit t=time return=probability
	p(t float64) float64
}

func viaIface(l life, t float64) float64 { return l.p(t) }

var horizon float64 //cs:unit time

func readHorizon() float64 { return horizon }

func anon() float64 { return 0.5 }

func pinned() float64 {
	d := anon() //cs:unit time
	return d
}

func sumBounds(bounds []float64) float64 {
	acc := 0.0
	for _, b := range bounds {
		acc += b
	}
	return acc
}
`

func TestAnnotationsAndInference(t *testing.T) {
	in, pkg := probe(t, analysis.NewSession(), "p", engineSrc, nil)

	if len(in.BadAnnots) != 0 {
		t.Fatalf("unexpected bad annotations: %v", in.BadAnnots)
	}
	cases := []struct {
		fn   string
		want dim.Dim
	}{
		{"posSub", dim.Work},          // declared
		{"wrap", dim.Work},            // inferred through local call
		{"expected", dim.Work},        // work × probability = work
		{"mixed", dim.Top},            // time joined with count
		{"viaIface", dim.Probability}, // annotated interface method
		{"readHorizon", dim.Time},     // annotated package variable
		{"pinned", dim.Time},          // trailing //cs:unit on :=
		{"sumBounds", dim.Unknown},    // nothing claimed
	}
	for _, tc := range cases {
		if got := funcDimsOf(t, in, pkg, tc.fn).Result(0); got != tc.want {
			t.Errorf("%s result dim = %v, want %v", tc.fn, got, tc.want)
		}
	}
	if got := funcDimsOf(t, in, pkg, "posSub").Param(0); got != dim.Time {
		t.Errorf("posSub param 0 = %v, want time", got)
	}
}

func TestBuiltinSeeds(t *testing.T) {
	// Analyzing under the real package path lets the built-in table
	// seed PositiveSub even with no annotation in the source.
	src := `package sched

func PositiveSub(t, c float64) float64 {
	if t < c {
		return 0
	}
	return t - c
}

func viaBuiltin(t, c float64) float64 { return PositiveSub(t, c) }
`
	in, pkg := probe(t, analysis.NewSession(), "repro/internal/sched", src, nil)
	if got := funcDimsOf(t, in, pkg, "PositiveSub").Result(0); got != dim.Work {
		t.Errorf("PositiveSub result = %v, want work", got)
	}
	if got := funcDimsOf(t, in, pkg, "viaBuiltin").Result(0); got != dim.Work {
		t.Errorf("viaBuiltin result = %v, want work (inferred through builtin)", got)
	}
}

func TestBadAnnotations(t *testing.T) {
	src := `package p

var x float64 //cs:unit flux

//cs:unit q=time
func f(t float64) float64 { return t }
`
	in, _ := probe(t, analysis.NewSession(), "p", src, nil)
	if len(in.BadAnnots) != 2 {
		t.Fatalf("bad annotations = %d, want 2: %v", len(in.BadAnnots), in.BadAnnots)
	}
}

type mapImporter map[string]*types.Package

func (m mapImporter) Import(path string) (*types.Package, error) {
	if p, ok := m[path]; ok {
		return p, nil
	}
	return nil, fmt.Errorf("no package %q", path)
}

func TestCrossPackageFacts(t *testing.T) {
	sess := analysis.NewSession()
	libSrc := `package lib

type Sched struct {
	Period float64 //cs:unit time
}

//cs:unit t=time c=time return=work
func PosSub(t, c float64) float64 {
	if t < c {
		return 0
	}
	return t - c
}
`
	_, libPkg := probe(t, sess, "lib", libSrc, nil)

	useSrc := `package use

import "lib"

func wrap(t, c float64) float64 { return lib.PosSub(t, c) }

func period(s lib.Sched) float64 { return s.Period }
`
	in, usePkg := probe(t, sess, "use", useSrc, mapImporter{"lib": libPkg})
	if got := funcDimsOf(t, in, usePkg, "wrap").Result(0); got != dim.Work {
		t.Errorf("wrap result = %v, want work (via imported facts)", got)
	}
	if got := funcDimsOf(t, in, usePkg, "period").Result(0); got != dim.Time {
		t.Errorf("period result = %v, want time (field dim via imported facts)", got)
	}
}

func TestFactsRoundTrip(t *testing.T) {
	f := dim.Facts{
		Funcs: map[string]dim.FuncDims{
			"p.F": {Params: []dim.Dim{dim.Time}, Results: []dim.Dim{dim.Work}},
		},
		Vars: map[string]dim.Dim{
			"Sched.Period": dim.Time,
			"horizon":      dim.Time,
		},
	}
	data, err := f.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := dim.DecodeFacts(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Funcs["p.F"].Result(0) != dim.Work || got.Vars["Sched.Period"] != dim.Time || got.Vars["horizon"] != dim.Time {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if _, err := dim.DecodeFacts(nil); err != nil {
		t.Fatalf("nil blob should decode: %v", err)
	}
}
