// Package dim is the dimension engine under the cslint suite's
// unitflow and probrange analyzers. Every quantity in the paper's
// model has an implicit physical type — period lengths and overheads
// are time, t ⊖ c is work, life functions p(t) are probabilities —
// but the Go code stores them all as float64. This package recovers
// the lost types as an abstract domain: a flat lattice of dimensions
// (Dim), seeded from //cs:unit annotations and a small table of known
// APIs, propagated through each function body by forward dataflow
// over its control-flow graph (internal/analysis/cfg +
// internal/analysis/dataflow), and carried across package boundaries
// as session facts exactly like the flow engine's value-flow
// summaries.
//
// # The //cs:unit grammar
//
// Declarations are comments beginning with "cs:unit". Two forms
// exist. The single-token form names one dimension and attaches to a
// declaration — a struct field, an interface method's doc, a var
// declaration, or a short variable declaration via a trailing comment
// on the same line:
//
//	type Schedule struct {
//		Period float64 //cs:unit time
//	}
//	var horizon float64 //cs:unit time
//	budget := remaining() //cs:unit work
//
// The named form attaches to a function declaration's doc comment and
// assigns dimensions to parameters (by name, with "recv" accepted for
// the receiver) and to results ("return=dim" for a single result,
// "return=dim,dim" positionally for several):
//
//	//cs:unit t=time c=time return=work
//	func PositiveSub(t, c float64) float64
//
// Dimension names are: time, work, probability, rate, count,
// dimensionless. A dimension declared on a slice, array or map names
// the dimension of its elements (the collection itself has none).
//
// # Soundness caveats
//
// The engine is a linter's domain, not a verifier's: dimensions
// attach to go/types variable objects and struct fields, so values
// threaded through channels, interfaces or reflection lose their
// dimension (they re-enter as Unknown, which never reports). Untyped
// constants are Unknown: `t + 1` is legal around arbitrary dimensions
// because the literal adapts. Mixed arithmetic whose result dimension
// the Mul/Div tables cannot name yields Top, which also never
// reports — both ends of the lattice are silent, so every unitflow
// diagnostic rests on two concretely known dimensions.
package dim

import (
	"encoding/json"
	"fmt"
	"sort"
)

// FactsNamespace keys the dimension engine's facts blobs in an
// analysis.Session (and therefore in vetx facts files).
const FactsNamespace = "unitdim"

// A Dim is one point of the dimension lattice. Unknown is bottom
// (nothing claimed yet, never reported); Top is the result of
// arithmetic the tables cannot name (also never reported); the middle
// layer holds the paper's concrete dimensions.
type Dim uint8

const (
	Unknown Dim = iota
	Time
	Work
	Probability
	Rate
	Count
	Dimensionless
	Top
)

var dimNames = [...]string{
	Unknown:       "unknown",
	Time:          "time",
	Work:          "work",
	Probability:   "probability",
	Rate:          "rate",
	Count:         "count",
	Dimensionless: "dimensionless",
	Top:           "mixed",
}

func (d Dim) String() string {
	if int(d) < len(dimNames) {
		return dimNames[d]
	}
	return fmt.Sprintf("dim(%d)", uint8(d))
}

// Concrete reports whether d is a named dimension — neither end of
// the lattice. Analyzers only diagnose relations between two concrete
// dimensions.
func (d Dim) Concrete() bool { return d != Unknown && d != Top }

// ParseDim resolves an annotation token to its dimension.
func ParseDim(s string) (Dim, bool) {
	switch s {
	case "time":
		return Time, true
	case "work":
		return Work, true
	case "probability":
		return Probability, true
	case "rate":
		return Rate, true
	case "count":
		return Count, true
	case "dimensionless":
		return Dimensionless, true
	}
	return Unknown, false
}

// Join is the lattice join: Unknown is the identity, agreeing
// dimensions keep their value, disagreeing concrete dimensions go to
// Top. It doubles as the abstract addition/subtraction result —
// unitflow reports the disagreement before the result decays to Top.
func Join(a, b Dim) Dim {
	switch {
	case a == Unknown:
		return b
	case b == Unknown:
		return a
	case a == b:
		return a
	default:
		return Top
	}
}

// Mul is the abstract product. Count and Dimensionless are scalar
// multipliers; the named products are the paper's: p·w is expected
// work, p·t expected time, rate·t a probability mass. Anything else
// is Top.
func Mul(a, b Dim) Dim {
	switch {
	case a == Unknown || b == Unknown:
		return Unknown
	case a == Top || b == Top:
		return Top
	case a == Dimensionless || a == Count:
		return b
	case b == Dimensionless || b == Count:
		return a
	case a == Probability && b == Probability:
		return Probability
	case (a == Probability && b == Work) || (a == Work && b == Probability):
		return Work
	case (a == Probability && b == Time) || (a == Time && b == Probability):
		return Time
	case (a == Rate && b == Time) || (a == Time && b == Rate):
		return Probability
	default:
		return Top
	}
}

// Div is the abstract quotient: like-over-like cancels, scalar
// divisors pass through, probability-per-time is a rate and dividing
// a probability by a rate recovers a time. Anything else is Top.
func Div(a, b Dim) Dim {
	switch {
	case a == Unknown || b == Unknown:
		return Unknown
	case a == Top || b == Top:
		return Top
	case a == b:
		return Dimensionless
	case b == Dimensionless || b == Count:
		return a
	case a == Probability && b == Time:
		return Rate
	case a == Probability && b == Rate:
		return Time
	case a == Time && b == Rate:
		return Top
	default:
		return Top
	}
}

// FuncDims records the declared (or inferred) dimensions of one
// function's parameters and results. Params is indexed receiver-first
// like flow.FuncSummary; holes are Unknown.
type FuncDims struct {
	Params  []Dim `json:"params,omitempty"`
	Results []Dim `json:"results,omitempty"`
}

// Param returns the dimension of normalized argument index i,
// collapsing variadic overflow onto the final parameter.
func (f FuncDims) Param(i int) Dim {
	if len(f.Params) == 0 {
		return Unknown
	}
	if i >= len(f.Params) {
		i = len(f.Params) - 1
	}
	if i < 0 {
		return Unknown
	}
	return f.Params[i]
}

// Result returns the dimension of result i, Unknown when undeclared.
func (f FuncDims) Result(i int) Dim {
	if i < 0 || i >= len(f.Results) {
		return Unknown
	}
	return f.Results[i]
}

func (f FuncDims) empty() bool {
	for _, d := range f.Params {
		if d != Unknown {
			return false
		}
	}
	for _, d := range f.Results {
		if d != Unknown {
			return false
		}
	}
	return true
}

func (f FuncDims) equal(g FuncDims) bool {
	if len(f.Params) != len(g.Params) || len(f.Results) != len(g.Results) {
		return false
	}
	for i := range f.Params {
		if f.Params[i] != g.Params[i] {
			return false
		}
	}
	for i := range f.Results {
		if f.Results[i] != g.Results[i] {
			return false
		}
	}
	return true
}

// Facts is one package's exported dimension knowledge. Funcs is keyed
// by types.Func.FullName (stable across loaders, like flow's
// summaries). Vars is keyed by "Type.Field" for struct fields and by
// the bare name for package-level variables.
type Facts struct {
	Funcs map[string]FuncDims
	Vars  map[string]Dim
}

// Encode packs facts deterministically (sorted keys) so identical
// analyses produce identical bytes.
func (f Facts) Encode() ([]byte, error) {
	type funcEntry struct {
		Name string   `json:"name"`
		Dims FuncDims `json:"dims"`
	}
	type varEntry struct {
		Name string `json:"name"`
		Dim  Dim    `json:"dim"`
	}
	var packed struct {
		Funcs []funcEntry `json:"funcs,omitempty"`
		Vars  []varEntry  `json:"vars,omitempty"`
	}
	names := make([]string, 0, len(f.Funcs))
	for name := range f.Funcs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		packed.Funcs = append(packed.Funcs, funcEntry{name, f.Funcs[name]})
	}
	names = names[:0]
	for name := range f.Vars {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		packed.Vars = append(packed.Vars, varEntry{name, f.Vars[name]})
	}
	return json.Marshal(packed)
}

// DecodeFacts unpacks a blob produced by Encode. A nil or empty blob
// yields empty (non-nil) maps.
func DecodeFacts(data []byte) (Facts, error) {
	out := Facts{Funcs: make(map[string]FuncDims), Vars: make(map[string]Dim)}
	if len(data) == 0 {
		return out, nil
	}
	var packed struct {
		Funcs []struct {
			Name string   `json:"name"`
			Dims FuncDims `json:"dims"`
		} `json:"funcs"`
		Vars []struct {
			Name string `json:"name"`
			Dim  Dim    `json:"dim"`
		} `json:"vars"`
	}
	if err := json.Unmarshal(data, &packed); err != nil {
		return Facts{}, fmt.Errorf("dim: decoding facts: %v", err)
	}
	for _, e := range packed.Funcs {
		out.Funcs[e.Name] = e.Dims
	}
	for _, e := range packed.Vars {
		out.Vars[e.Name] = e.Dim
	}
	return out, nil
}

// builtinFuncs seeds dimensions for APIs the issue names explicitly,
// so the engine knows them even in trees whose sources carry no
// annotations yet. Keys are types.Func full names; Params are
// receiver-first.
var builtinFuncs = map[string]FuncDims{
	"repro/internal/sched.PositiveSub": {
		Params:  []Dim{Time, Time},
		Results: []Dim{Work},
	},
	"(repro/internal/lifefn.Life).P": {
		Params:  []Dim{Unknown, Time},
		Results: []Dim{Probability},
	},
	"(repro/internal/lifefn.Life).Deriv": {
		Params:  []Dim{Unknown, Time},
		Results: []Dim{Rate},
	},
	"(repro/internal/lifefn.Life).Horizon": {
		Params:  []Dim{Unknown},
		Results: []Dim{Time},
	},
}
