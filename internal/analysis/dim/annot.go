package dim

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// A BadAnnot is one malformed //cs:unit annotation; the unitflow
// analyzer surfaces these as diagnostics so typos do not silently
// disable checking.
type BadAnnot struct {
	Pos token.Pos
	Msg string
}

// unitRest extracts the payload of a cs:unit comment line: the text
// after the marker, "" and false when c is not an annotation. The
// shared cs: scanner rejects cs:unitary and similar near-misses
// because the selector must match exactly.
func unitRest(c *ast.Comment) (string, bool) {
	d, ok := analysis.CommentDirective(c)
	if !ok || d.Name != "unit" {
		return "", false
	}
	return d.Payload, true
}

// groupRest returns the first cs:unit payload in a comment group.
func groupRest(g *ast.CommentGroup) (string, token.Pos, bool) {
	if g == nil {
		return "", token.NoPos, false
	}
	for _, c := range g.List {
		if rest, ok := unitRest(c); ok {
			return rest, c.Pos(), true
		}
	}
	return "", token.NoPos, false
}

type kv struct {
	key, val string
}

// parseNamed splits the named form "t=time c=time return=work" into
// key/value pairs.
func parseNamed(rest string) ([]kv, []string) {
	var kvs []kv
	var errs []string
	for _, tok := range strings.Fields(rest) {
		eq := strings.IndexByte(tok, '=')
		if eq <= 0 || eq == len(tok)-1 {
			errs = append(errs, "want name=dim pairs, got "+tok)
			continue
		}
		kvs = append(kvs, kv{tok[:eq], tok[eq+1:]})
	}
	if len(kvs) == 0 && len(errs) == 0 {
		errs = append(errs, "empty annotation")
	}
	return kvs, errs
}

// buildFuncDims resolves named-form pairs against a signature's
// parameter and result lists. hasRecv shifts declared parameters by
// one so Params is receiver-first; recvName (or the literal "recv")
// addresses index 0.
func buildFuncDims(recvName string, hasRecv bool, params, results *ast.FieldList, kvs []kv) (FuncDims, []string) {
	var errs []string
	nParams := 0
	if hasRecv {
		nParams = 1
	}
	paramIdx := make(map[string]int)
	if hasRecv {
		paramIdx["recv"] = 0
		if recvName != "" {
			paramIdx[recvName] = 0
		}
	}
	if params != nil {
		for _, f := range params.List {
			if len(f.Names) == 0 {
				nParams++
				continue
			}
			for _, name := range f.Names {
				paramIdx[name.Name] = nParams
				nParams++
			}
		}
	}
	nResults := 0
	resultIdx := make(map[string]int)
	if results != nil {
		for _, f := range results.List {
			if len(f.Names) == 0 {
				nResults++
				continue
			}
			for _, name := range f.Names {
				resultIdx[name.Name] = nResults
				nResults++
			}
		}
	}
	fd := FuncDims{Params: make([]Dim, nParams), Results: make([]Dim, nResults)}
	for _, p := range kvs {
		if p.key == "return" {
			for i, part := range strings.Split(p.val, ",") {
				d, ok := ParseDim(part)
				if !ok {
					errs = append(errs, "unknown dimension "+part)
					continue
				}
				if i >= nResults {
					errs = append(errs, "return dimension "+part+" has no result to bind")
					continue
				}
				fd.Results[i] = d
			}
			continue
		}
		d, ok := ParseDim(p.val)
		if !ok {
			errs = append(errs, "unknown dimension "+p.val)
			continue
		}
		if i, ok := paramIdx[p.key]; ok {
			fd.Params[i] = d
		} else if i, ok := resultIdx[p.key]; ok {
			fd.Results[i] = d
		} else {
			errs = append(errs, "no parameter or result named "+p.key)
		}
	}
	return fd, errs
}

// collectAnnots walks the package's files gathering every //cs:unit
// declaration into the engine's maps.
func (in *Info) collectAnnots() {
	info := in.TypesInfo
	for _, file := range in.pass.Files {
		// Trailing-comment annotations on short variable declarations
		// are not attached to any AST node; index them by line.
		type lineAnnot struct {
			dim Dim
			pos token.Pos
		}
		lineAnnots := make(map[int]lineAnnot)
		for _, g := range file.Comments {
			for _, c := range g.List {
				rest, ok := unitRest(c)
				if !ok {
					continue
				}
				if d, ok := ParseDim(rest); ok {
					line := in.Fset.Position(c.Pos()).Line
					lineAnnots[line] = lineAnnot{d, c.Pos()}
				}
			}
		}

		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				rest, pos, ok := groupRest(n.Doc)
				if !ok {
					return true
				}
				obj, _ := info.Defs[n.Name].(*types.Func)
				if obj == nil {
					return true
				}
				kvs, errs := parseNamed(rest)
				recvName := ""
				hasRecv := n.Recv != nil
				if hasRecv && len(n.Recv.List) > 0 && len(n.Recv.List[0].Names) > 0 {
					recvName = n.Recv.List[0].Names[0].Name
				}
				fd, more := buildFuncDims(recvName, hasRecv, n.Type.Params, n.Type.Results, kvs)
				errs = append(errs, more...)
				for _, e := range errs {
					in.BadAnnots = append(in.BadAnnots, BadAnnot{pos, e})
				}
				if !fd.empty() {
					in.funcDims[obj] = fd
					// Seed parameter objects too, so the body analysis and
					// storage-dim lookups agree with the signature.
					in.seedParamDims(obj, fd)
				}
			case *ast.TypeSpec:
				switch t := n.Type.(type) {
				case *ast.StructType:
					in.collectStructAnnots(n.Name.Name, t)
				case *ast.InterfaceType:
					in.collectInterfaceAnnots(t)
				}
			case *ast.ValueSpec:
				rest, pos, ok := groupRest(n.Comment)
				if !ok {
					rest, pos, ok = groupRest(n.Doc)
				}
				if !ok {
					return true
				}
				d, dok := ParseDim(rest)
				if !dok {
					in.BadAnnots = append(in.BadAnnots, BadAnnot{pos, "unknown dimension " + rest})
					return true
				}
				for _, name := range n.Names {
					v, _ := info.Defs[name].(*types.Var)
					if v == nil {
						continue
					}
					in.objDims[v] = d
					if v.Parent() == in.Pkg.Scope() {
						in.varKeys[v] = v.Name()
					}
				}
			case *ast.AssignStmt:
				if n.Tok != token.DEFINE {
					return true
				}
				la, ok := lineAnnots[in.Fset.Position(n.End()).Line]
				if !ok {
					return true
				}
				if len(n.Lhs) != 1 {
					in.BadAnnots = append(in.BadAnnots, BadAnnot{la.pos, "trailing cs:unit needs a single-variable declaration"})
					return true
				}
				if id, ok := n.Lhs[0].(*ast.Ident); ok {
					if v, _ := info.Defs[id].(*types.Var); v != nil {
						in.objDims[v] = la.dim
					}
				}
			}
			return true
		})
	}
}

func (in *Info) collectStructAnnots(typeName string, st *ast.StructType) {
	if st.Fields == nil {
		return
	}
	for _, f := range st.Fields.List {
		rest, pos, ok := groupRest(f.Comment)
		if !ok {
			rest, pos, ok = groupRest(f.Doc)
		}
		if !ok {
			continue
		}
		d, dok := ParseDim(rest)
		if !dok {
			in.BadAnnots = append(in.BadAnnots, BadAnnot{pos, "unknown dimension " + rest})
			continue
		}
		if len(f.Names) == 0 {
			in.BadAnnots = append(in.BadAnnots, BadAnnot{pos, "cannot annotate an embedded field"})
			continue
		}
		for _, name := range f.Names {
			v, _ := in.TypesInfo.Defs[name].(*types.Var)
			if v == nil {
				continue
			}
			in.objDims[v] = d
			in.varKeys[v] = typeName + "." + name.Name
		}
	}
}

func (in *Info) collectInterfaceAnnots(it *ast.InterfaceType) {
	if it.Methods == nil {
		return
	}
	for _, m := range it.Methods.List {
		ft, ok := m.Type.(*ast.FuncType)
		if !ok || len(m.Names) == 0 {
			continue
		}
		rest, pos, rok := groupRest(m.Doc)
		if !rok {
			rest, pos, rok = groupRest(m.Comment)
		}
		if !rok {
			continue
		}
		obj, _ := in.TypesInfo.Defs[m.Names[0]].(*types.Func)
		if obj == nil {
			continue
		}
		kvs, errs := parseNamed(rest)
		fd, more := buildFuncDims("", true, ft.Params, ft.Results, kvs)
		errs = append(errs, more...)
		for _, e := range errs {
			in.BadAnnots = append(in.BadAnnots, BadAnnot{pos, e})
		}
		if !fd.empty() {
			in.funcDims[obj] = fd
		}
	}
}
