// Package determinism guards the simulator packages' reproducibility
// contract: a seeded run must be bit-identical across machines and
// runs, with or without observability attached (the sink-on == sink-off
// trace guarantee).
//
// In the guarded packages (import paths ending in nowsim, core, sched
// or faultsim, including their test variants) the analyzer flags:
//   - importing math/rand or math/rand/v2: its stream is
//     version-dependent; randomness must come from the explicitly
//     seeded repro/internal/rng;
//   - referencing time.Now, time.Since, time.Tick or time.After:
//     simulators run on simulated clocks, never the wall clock;
//   - ranging over a map: iteration order is randomized per run, so any
//     output, trace or accumulation sequenced by it silently breaks the
//     bit-identical guarantee. Iterate a sorted key slice, or annotate
//     //lint:allow determinism with an argument for commutativity.
package determinism

import (
	"go/ast"
	"go/types"
	"strconv"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc:  "forbid wall clocks, math/rand and map-iteration-order dependence in simulator packages",
	Run:  run,
}

// guarded names the simulator packages (matched on the cleaned last
// path element, so module, fixture and go-vet test-variant paths all
// agree).
var guarded = map[string]bool{
	"nowsim":   true,
	"core":     true,
	"sched":    true,
	"faultsim": true,
}

// wallClock lists time package functions that read the wall clock.
var wallClock = map[string]bool{
	"time.Now":   true,
	"time.Since": true,
	"time.Until": true,
	"time.Tick":  true,
	"time.After": true,
}

func run(pass *analysis.Pass) error {
	if !guarded[analysis.PkgBase(pass.Pkg.Path())] {
		return nil
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			if p, err := strconv.Unquote(imp.Path.Value); err == nil {
				if p == "math/rand" || p == "math/rand/v2" {
					pass.ReportRangef(imp, "import of %s in a simulator package: use the seeded repro/internal/rng for reproducible streams", p)
				}
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if fn, ok := pass.TypesInfo.Uses[n.Sel].(*types.Func); ok && wallClock[fn.FullName()] {
					pass.ReportRangef(n, "%s reads the wall clock in a simulator package: use the simulated clock", fn.FullName())
				}
			case *ast.RangeStmt:
				if t := pass.TypesInfo.TypeOf(n.X); t != nil {
					if _, ok := t.Underlying().(*types.Map); ok {
						pass.ReportRangef(n.X, "range over a map has nondeterministic order in a simulator package: iterate sorted keys or annotate //lint:allow determinism")
					}
				}
			}
			return true
		})
	}
	return nil
}
