package nowsim

import (
	"math/rand" // want "import of math/rand in a simulator package"
	"time"
)

func clock() time.Duration {
	start := time.Now()      // want "time.Now reads the wall clock"
	return time.Since(start) // want "time.Since reads the wall clock"
}

func draw() int { return rand.Intn(6) }

func emitAll(m map[int]string, emit func(string)) {
	for _, v := range m { // want "range over a map has nondeterministic order"
		emit(v)
	}
}

func overSlice(xs []int, emit func(int)) {
	for _, v := range xs { // slices iterate in order: non-finding
		emit(v)
	}
}

func commutative(m map[string]int) int {
	n := 0
	//lint:allow determinism pure count, order-insensitive
	for range m {
		n++
	}
	return n
}
