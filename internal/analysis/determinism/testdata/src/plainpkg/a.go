// Package plainpkg is not a simulator package, so wall clocks and map
// iteration are fine here: every determinism check is a non-finding.
package plainpkg

import "time"

func clock() time.Time { return time.Now() }

func keys(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}
