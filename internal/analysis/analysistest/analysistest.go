// Package analysistest runs an analyzer over golden test fixtures and
// checks its findings against expectations written in the fixtures
// themselves, mirroring golang.org/x/tools/go/analysis/analysistest.
//
// Fixture packages live under <testdata>/src/<importpath>/ and mark
// expected findings with trailing comments:
//
//	if a == b { // want "exact floating-point comparison"
//
// Each quoted string is a regular expression that must match the
// message of exactly one finding on that line; lines without a want
// comment must produce no findings. Because the harness routes findings
// through the same suppression pass as the real drivers, a fixture line
// annotated with //lint:allow is asserted as a non-finding.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
)

// TestData returns the absolute path of the calling test's testdata
// directory (tests run in their package directory).
func TestData() string {
	p, err := filepath.Abs("testdata")
	if err != nil {
		panic(err)
	}
	return p
}

// Run loads each fixture package from testdata/src and applies the
// analyzer, reporting any mismatch between findings and want comments
// as test errors.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgpaths ...string) {
	t.Helper()
	cfg := load.Config{
		Dir:     testdata,
		SrcDirs: []string{filepath.Join(testdata, "src")},
		// Test files participate: the real drivers analyze them too, and
		// some analyzers (printlint) exempt them explicitly.
		Tests: true,
	}
	pkgs, err := cfg.Load(pkgpaths...)
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	// Analyze dependency-first with one session so interprocedural
	// analyzers see facts for fixture packages that depend on each
	// other, exactly as the real drivers provide them.
	sess := analysis.NewSession()
	for _, pkg := range load.Sort(pkgs) {
		findings, err := sess.Run(pkg.Fset, pkg.Files, pkg.Types, pkg.Info, []*analysis.Analyzer{a})
		if err != nil {
			t.Fatalf("%s: %v", pkg.ImportPath, err)
		}
		check(t, pkg, findings)
	}
}

type key struct {
	file string
	line int
}

// check compares findings against the fixture's want comments.
func check(t *testing.T, pkg *load.Package, findings []analysis.Finding) {
	t.Helper()
	wants := make(map[key][]*regexp.Regexp)
	for _, f := range pkg.Files {
		collectWants(t, pkg.Fset, f, wants)
	}
	got := make(map[key][]string)
	for _, f := range findings {
		k := key{f.Pos.Filename, f.Pos.Line}
		got[k] = append(got[k], f.Message)
	}
	for k, res := range wants {
		msgs := got[k]
		for _, re := range res {
			idx := -1
			for i, m := range msgs {
				if re.MatchString(m) {
					idx = i
					break
				}
			}
			if idx < 0 {
				t.Errorf("%s:%d: no finding matching %q (got %v)", k.file, k.line, re, msgs)
				continue
			}
			msgs = append(msgs[:idx], msgs[idx+1:]...)
		}
		if len(msgs) > 0 {
			t.Errorf("%s:%d: unexpected findings beyond want comments: %v", k.file, k.line, msgs)
		}
		delete(got, k)
	}
	for k, msgs := range got {
		t.Errorf("%s:%d: unexpected findings: %v", k.file, k.line, msgs)
	}
}

// collectWants parses `// want "re" "re"` comments.
func collectWants(t *testing.T, fset *token.FileSet, f *ast.File, wants map[key][]*regexp.Regexp) {
	t.Helper()
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			rest, ok := strings.CutPrefix(text, "want ")
			if !ok {
				continue
			}
			pos := fset.Position(c.Pos())
			k := key{pos.Filename, pos.Line}
			for {
				rest = strings.TrimSpace(rest)
				if rest == "" {
					break
				}
				lit, err := nextString(rest)
				if err != nil {
					t.Fatalf("%s: bad want comment %q: %v", pos, c.Text, err)
				}
				pat, err := strconv.Unquote(lit)
				if err != nil {
					t.Fatalf("%s: bad want literal %s: %v", pos, lit, err)
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s: bad want regexp %q: %v", pos, pat, err)
				}
				wants[k] = append(wants[k], re)
				rest = rest[len(lit):]
			}
		}
	}
}

// nextString returns the leading Go string literal of s.
func nextString(s string) (string, error) {
	if s == "" || (s[0] != '"' && s[0] != '`') {
		return "", fmt.Errorf("expected string literal, have %q", s)
	}
	quote := s[0]
	for i := 1; i < len(s); i++ {
		switch {
		case s[i] == '\\' && quote == '"':
			i++
		case s[i] == quote:
			return s[:i+1], nil
		}
	}
	return "", fmt.Errorf("unterminated string in %q", s)
}
