// SARIF 2.1.0 output for the standalone driver. The structs mirror the
// slice of the schema cslint emits — static-analysis interchange for
// code-scanning UIs — and are kept exported-field-complete so the
// schema test can strict-decode the output without a network fetch.
package driver

import (
	"encoding/json"
	"io"

	"repro/internal/analysis"
)

const (
	sarifSchema  = "https://json.schemastore.org/sarif-2.1.0.json"
	sarifVersion = "2.1.0"
	// sarifSrcRoot is the conventional uriBaseId for repo-relative
	// artifact URIs; consumers bind it to the checkout root.
	sarifSrcRoot = "SRCROOT"
)

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
	EndLine     int `json:"endLine,omitempty"`
	EndColumn   int `json:"endColumn,omitempty"`
}

// writeSARIF renders findings as one SARIF run. The rules table lists
// every active analyzer (found or not), so a clean log still documents
// what was checked; results reference rules by index.
func writeSARIF(w io.Writer, analyzers []*analysis.Analyzer, findings []analysis.Finding) error {
	rules := make([]sarifRule, 0, len(analyzers))
	ruleIndex := make(map[string]int, len(analyzers))
	for i, a := range analyzers {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: firstLine(a.Doc)}})
		ruleIndex[a.Name] = i
	}
	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		idx, ok := ruleIndex[f.Analyzer]
		if !ok {
			// A finding from an analyzer outside the active set (cannot
			// happen via Session.Run, but keep the log well-formed).
			idx = len(rules)
			ruleIndex[f.Analyzer] = idx
			rules = append(rules, sarifRule{ID: f.Analyzer, ShortDescription: sarifMessage{Text: f.Analyzer}})
		}
		region := sarifRegion{StartLine: f.Pos.Line, StartColumn: f.Pos.Column}
		if f.End.Line > 0 {
			region.EndLine = f.End.Line
			region.EndColumn = f.End.Column
		}
		results = append(results, sarifResult{
			RuleID:    f.Analyzer,
			RuleIndex: idx,
			Level:     "warning",
			Message:   sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{
						URI:       toSlash(f.Pos.Filename),
						URIBaseID: sarifSrcRoot,
					},
					Region: region,
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  sarifSchema,
		Version: sarifVersion,
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "cslint", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

func firstLine(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			return s[:i]
		}
	}
	return s
}

// toSlash normalizes path separators for artifact URIs.
func toSlash(p string) string {
	out := []byte(p)
	for i := range out {
		if out[i] == '\\' {
			out[i] = '/'
		}
	}
	return string(out)
}
