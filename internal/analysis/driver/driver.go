// Package driver is the command-line front end shared by cmd/cslint.
// One binary serves two callers:
//
//   - Standalone: `cslint ./...` loads packages from source with the
//     in-repo loader, prints findings to stdout and exits 1 if any.
//   - Vet tool: `go vet -vettool=cslint ./...` — cmd/go probes the tool
//     with -V=full and -flags, then invokes it once per package with a
//     JSON config file (handled by internal/analysis/unit).
package driver

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
	"repro/internal/analysis/unit"
)

// Main runs the cslint driver and returns the process exit code:
// 0 clean, 1 findings (or type errors), 2 usage/protocol errors.
func Main(argv []string, stdout, stderr io.Writer, analyzers []*analysis.Analyzer) int {
	prog := "cslint"
	if len(argv) > 0 {
		prog = argv[0]
		argv = argv[1:]
	}

	fs := flag.NewFlagSet(prog, flag.ContinueOnError)
	fs.SetOutput(stderr)
	version := fs.String("V", "", "print version and exit (go vet protocol)")
	printFlags := fs.Bool("flags", false, "print analyzer flags in JSON (go vet protocol)")
	enabled := make(map[string]*bool, len(analyzers))
	for _, a := range analyzers {
		doc := a.Doc
		if i := strings.IndexByte(doc, '\n'); i >= 0 {
			doc = doc[:i]
		}
		enabled[a.Name] = fs.Bool(a.Name, true, "enable the "+a.Name+" analyzer: "+doc)
	}
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: %s [flags] [packages]\n", prog)
		fmt.Fprintf(stderr, "       %s [flags] <vet.cfg>   (go vet -vettool mode)\n\n", prog)
		fs.PrintDefaults()
	}
	if err := fs.Parse(argv); err != nil {
		return 2
	}

	if *version != "" {
		// cmd/go requires `<name> version <ver>`, and for a "devel"
		// version the last field must carry a buildID. Hash our own
		// executable so the cache key changes whenever the tool does.
		if *version != "full" {
			fmt.Fprintf(stderr, "%s: unsupported -V value %q\n", prog, *version)
			return 2
		}
		id := "unknown"
		if exe, err := os.Executable(); err == nil {
			if data, err := os.ReadFile(exe); err == nil {
				id = fmt.Sprintf("%x", sha256.Sum256(data))
			}
		}
		fmt.Fprintf(stdout, "%s version devel buildID=%s\n", prog, id)
		return 0
	}
	if *printFlags {
		// Advertise the per-analyzer toggles so `go vet -<name>=false`
		// works through the vettool.
		type jsonFlag struct {
			Name  string
			Bool  bool
			Usage string
		}
		var out []jsonFlag
		for _, a := range analyzers {
			out = append(out, jsonFlag{Name: a.Name, Bool: true, Usage: "enable " + a.Name})
		}
		data, err := json.Marshal(out)
		if err != nil {
			fmt.Fprintln(stderr, prog+":", err)
			return 2
		}
		fmt.Fprintln(stdout, string(data))
		return 0
	}

	var active []*analysis.Analyzer
	for _, a := range analyzers {
		if *enabled[a.Name] {
			active = append(active, a)
		}
	}

	args := fs.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		return unit.Run(args[0], active, stderr)
	}
	return runStandalone(args, active, stdout, stderr)
}

// runStandalone loads the named packages (default ./...) from source
// and prints findings to stdout.
func runStandalone(patterns []string, analyzers []*analysis.Analyzer, stdout, stderr io.Writer) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "cslint:", err)
		return 2
	}
	cfg := load.Config{Dir: dir, Tests: true}
	pkgs, err := cfg.Load(patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "cslint:", err)
		return 1
	}
	found := false
	for _, pkg := range pkgs {
		findings, err := analysis.RunAnalyzers(pkg.Fset, pkg.Files, pkg.Types, pkg.Info, analyzers)
		if err != nil {
			fmt.Fprintln(stderr, "cslint:", err)
			return 2
		}
		for _, f := range findings {
			found = true
			fmt.Fprintln(stdout, f)
		}
	}
	if found {
		return 1
	}
	return 0
}
