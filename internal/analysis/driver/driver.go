// Package driver is the command-line front end shared by cmd/cslint.
// One binary serves two callers:
//
//   - Standalone: `cslint ./...` loads packages from source with the
//     in-repo loader (dependency-first, so interprocedural facts flow),
//     prints findings to stdout and exits 1 if any. -json switches to
//     machine-readable output; -baseline/-write-baseline suppress or
//     record pre-existing findings.
//   - Vet tool: `go vet -vettool=cslint ./...` — cmd/go probes the tool
//     with -V=full and -flags, then invokes it once per package with a
//     JSON config file (handled by internal/analysis/unit).
package driver

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
	"repro/internal/analysis/unit"
)

// Main runs the cslint driver and returns the process exit code:
// 0 clean, 1 findings (or type errors), 2 usage/protocol errors.
func Main(argv []string, stdout, stderr io.Writer, analyzers []*analysis.Analyzer) int {
	prog := "cslint"
	if len(argv) > 0 {
		prog = argv[0]
		argv = argv[1:]
	}

	fs := flag.NewFlagSet(prog, flag.ContinueOnError)
	fs.SetOutput(stderr)
	version := fs.String("V", "", "print version and exit (go vet protocol)")
	printFlags := fs.Bool("flags", false, "print analyzer flags in JSON (go vet protocol)")
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array (standalone mode)")
	sarifOut := fs.Bool("sarif", false, "emit findings as a SARIF 2.1.0 log (standalone mode)")
	baseline := fs.String("baseline", "", "suppress findings recorded in this baseline file (standalone mode)")
	writeBaseline := fs.Bool("write-baseline", false, "write current findings to the -baseline file (default lint-baseline.json) and exit 0")
	enabled := make(map[string]*bool, len(analyzers))
	for _, a := range analyzers {
		doc := a.Doc
		if i := strings.IndexByte(doc, '\n'); i >= 0 {
			doc = doc[:i]
		}
		enabled[a.Name] = fs.Bool(a.Name, true, "enable the "+a.Name+" analyzer: "+doc)
	}
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: %s [flags] [packages]\n", prog)
		fmt.Fprintf(stderr, "       %s [flags] <vet.cfg>   (go vet -vettool mode)\n\n", prog)
		fs.PrintDefaults()
	}
	if err := fs.Parse(argv); err != nil {
		return 2
	}

	if *version != "" {
		// cmd/go requires `<name> version <ver>`, and for a "devel"
		// version the last field must carry a buildID. Hash our own
		// executable so the cache key changes whenever the tool does.
		if *version != "full" {
			fmt.Fprintf(stderr, "%s: unsupported -V value %q\n", prog, *version)
			return 2
		}
		id := "unknown"
		if exe, err := os.Executable(); err == nil {
			if data, err := os.ReadFile(exe); err == nil {
				id = fmt.Sprintf("%x", sha256.Sum256(data))
			}
		}
		fmt.Fprintf(stdout, "%s version devel buildID=%s\n", prog, id)
		return 0
	}
	if *printFlags {
		// Advertise the per-analyzer toggles so `go vet -<name>=false`
		// works through the vettool.
		type jsonFlag struct {
			Name  string
			Bool  bool
			Usage string
		}
		var out []jsonFlag
		for _, a := range analyzers {
			out = append(out, jsonFlag{Name: a.Name, Bool: true, Usage: "enable " + a.Name})
		}
		data, err := json.Marshal(out)
		if err != nil {
			fmt.Fprintln(stderr, prog+":", err)
			return 2
		}
		fmt.Fprintln(stdout, string(data))
		return 0
	}

	var active []*analysis.Analyzer
	for _, a := range analyzers {
		if *enabled[a.Name] {
			active = append(active, a)
		}
	}

	args := fs.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		return unit.Run(args[0], active, stderr)
	}
	opts := standaloneOpts{
		json:          *jsonOut,
		sarif:         *sarifOut,
		baseline:      *baseline,
		writeBaseline: *writeBaseline,
	}
	return runStandalone(args, active, opts, stdout, stderr)
}

type standaloneOpts struct {
	json          bool
	sarif         bool
	baseline      string
	writeBaseline bool
}

// jsonDiag is one finding in -json output: the documented, stable
// machine-readable schema for editors and CI. EndLine/EndCol bound the
// offending expression when the analyzer reported a range (they are
// omitted for point diagnostics), so editors can underline the exact
// span instead of guessing a token.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	EndLine  int    `json:"endLine,omitempty"`
	EndCol   int    `json:"endCol,omitempty"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// baselineEntry is one suppressed finding class in a baseline file.
// Line numbers are deliberately absent: a baseline must survive
// unrelated edits, so findings are matched by file, analyzer and
// message, up to Count occurrences each.
type baselineEntry struct {
	File     string `json:"file"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
	Count    int    `json:"count"`
}

type baselineFile struct {
	Findings []baselineEntry `json:"findings"`
}

func baselineKey(file, analyzer, message string) string {
	return file + "\x00" + analyzer + "\x00" + message
}

// runStandalone loads the named packages (default ./...) from source,
// analyzes them dependency-first under one session, and reports
// findings that survive the baseline.
func runStandalone(patterns []string, analyzers []*analysis.Analyzer, opts standaloneOpts, stdout, stderr io.Writer) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "cslint:", err)
		return 2
	}
	cfg := load.Config{Dir: dir, Tests: true}
	pkgs, err := cfg.Load(patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "cslint:", err)
		return 1
	}
	sess := analysis.NewSession()
	var all []analysis.Finding
	for _, pkg := range load.Sort(pkgs) {
		findings, err := sess.Run(pkg.Fset, pkg.Files, pkg.Types, pkg.Info, analyzers)
		if err != nil {
			fmt.Fprintln(stderr, "cslint:", err)
			return 2
		}
		all = append(all, findings...)
	}
	// Paths in output and baselines are repo-root-relative — anchored
	// at the enclosing go.mod, not the invocation directory — so a
	// baseline written at the root suppresses the same findings when
	// cslint runs from any subdirectory of the checkout.
	root := load.ModuleRoot(dir)
	for i := range all {
		if rel, err := filepath.Rel(root, all[i].Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			all[i].Pos.Filename = rel
		}
	}

	if opts.writeBaseline {
		path := opts.baseline
		if path == "" {
			path = "lint-baseline.json"
		}
		if err := writeBaselineFile(path, all); err != nil {
			fmt.Fprintln(stderr, "cslint:", err)
			return 2
		}
		fmt.Fprintf(stdout, "cslint: wrote %d finding(s) to %s\n", len(all), path)
		return 0
	}
	if opts.baseline != "" {
		remaining, err := applyBaseline(opts.baseline, all)
		if err != nil {
			fmt.Fprintln(stderr, "cslint:", err)
			return 2
		}
		all = remaining
	}

	switch {
	case opts.sarif:
		if err := writeSARIF(stdout, analyzers, all); err != nil {
			fmt.Fprintln(stderr, "cslint:", err)
			return 2
		}
	case opts.json:
		diags := make([]jsonDiag, 0, len(all))
		for _, f := range all {
			d := jsonDiag{
				File:     f.Pos.Filename,
				Line:     f.Pos.Line,
				Col:      f.Pos.Column,
				Analyzer: f.Analyzer,
				Message:  f.Message,
			}
			if f.End.Line > 0 {
				d.EndLine = f.End.Line
				d.EndCol = f.End.Column
			}
			diags = append(diags, d)
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(stderr, "cslint:", err)
			return 2
		}
	default:
		for _, f := range all {
			fmt.Fprintln(stdout, f)
		}
	}
	if len(all) > 0 {
		return 1
	}
	return 0
}

// writeBaselineFile records findings as a deterministic baseline.
func writeBaselineFile(path string, findings []analysis.Finding) error {
	counts := make(map[string]*baselineEntry)
	for _, f := range findings {
		k := baselineKey(f.Pos.Filename, f.Analyzer, f.Message)
		if e, ok := counts[k]; ok {
			e.Count++
			continue
		}
		counts[k] = &baselineEntry{File: f.Pos.Filename, Analyzer: f.Analyzer, Message: f.Message, Count: 1}
	}
	bf := baselineFile{Findings: make([]baselineEntry, 0, len(counts))}
	for _, e := range counts {
		bf.Findings = append(bf.Findings, *e)
	}
	sort.Slice(bf.Findings, func(i, j int) bool {
		a, b := bf.Findings[i], bf.Findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	data, err := json.MarshalIndent(bf, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o666)
}

// applyBaseline drops findings recorded in the baseline file, matching
// by file/analyzer/message with per-class counts.
func applyBaseline(path string, findings []analysis.Finding) ([]analysis.Finding, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("reading baseline: %v", err)
	}
	var bf baselineFile
	if err := json.Unmarshal(data, &bf); err != nil {
		return nil, fmt.Errorf("parsing baseline %s: %v", path, err)
	}
	budget := make(map[string]int, len(bf.Findings))
	for _, e := range bf.Findings {
		budget[baselineKey(e.File, e.Analyzer, e.Message)] += e.Count
	}
	var out []analysis.Finding
	for _, f := range findings {
		k := baselineKey(f.Pos.Filename, f.Analyzer, f.Message)
		if budget[k] > 0 {
			budget[k]--
			continue
		}
		out = append(out, f)
	}
	return out, nil
}
