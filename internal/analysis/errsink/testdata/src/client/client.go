// Package client consumes obs types from outside: dropping their
// errors is a finding everywhere, not just inside obs.
package client

import "obs"

func use(s *obs.FileSink) error {
	s.Close() // want `error from \(\*obs.FileSink\).Close is dropped`
	if err := s.Close(); err != nil {
		return err // checked: non-finding
	}
	defer s.Close() // deferred backstop: non-finding
	return nil
}
