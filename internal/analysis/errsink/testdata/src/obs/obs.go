// Package obs mimics the sink implementation package: inside it, any
// dropped Close/Flush/Write/Sync error is a finding.
package obs

import "os"

type FileSink struct{ f *os.File }

func (s *FileSink) Close() error { return s.f.Close() }

func (s *FileSink) note() {}

func (s *FileSink) drop() {
	s.f.Close()     // want `error from \(\*os.File\).Close is dropped`
	_ = s.f.Close() // explicit discard: non-finding
	s.note()        // returns no error: non-finding
}

func (s *FileSink) backstop() {
	defer s.f.Close() // deferred backstop: non-finding
}

func (s *FileSink) acknowledged() {
	//lint:allow errsink close error surfaced by the later explicit Close
	s.f.Close()
}
