// Package errsink flags dropped errors on the observability output
// path. A trace whose final buffer never flushed, or a metrics server
// that failed to close, invalidates the experiment that produced it —
// silently, because the write error went to the void.
//
// Two rules, both applied only to plain call statements (a deferred
// Close is an accepted belt-and-braces backstop, and assigning to _ is
// an explicit, reviewable acknowledgment):
//   - everywhere: a call statement that discards an error returned by a
//     function or method defined in a package named obs (sink Close,
//     Session.Close, Server.Close, ...);
//   - inside packages named obs: a call statement that discards an
//     error from any Close, Flush, Write or Sync method — the sink
//     implementations may not swallow the underlying writer's errors.
package errsink

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "errsink",
	Doc:  "flag dropped errors from observability sink writes and closes",
	Run:  run,
}

var writerMethods = map[string]bool{
	"Close": true,
	"Flush": true,
	"Write": true,
	"Sync":  true,
}

func run(pass *analysis.Pass) error {
	inObs := analysis.PkgBase(pass.Pkg.Path()) == "obs"
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass, call)
			if fn == nil || !returnsError(fn) {
				return true
			}
			fromObs := fn.Pkg() != nil && analysis.PkgBase(fn.Pkg().Path()) == "obs"
			if fromObs || (inObs && writerMethods[fn.Name()]) {
				pass.ReportRangef(call, "error from %s is dropped; check it or assign to _ explicitly", fn.FullName())
			}
			return true
		})
	}
	return nil
}

// calleeFunc resolves the called function or method, if statically
// known.
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}

// returnsError reports whether fn's last result is error.
func returnsError(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	res := sig.Results()
	if res.Len() == 0 {
		return false
	}
	last := res.At(res.Len() - 1).Type()
	return types.Identical(last, types.Universe.Lookup("error").Type())
}
