package nonnegwork_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/nonnegwork"
)

func TestNonNegWork(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), nonnegwork.Analyzer, "work", "nowsim")
}
