// Package nonnegwork guards the paper's positive-subtraction operator:
// remaining work is t ⊖ c = max(0, t-c) (eq. 2.1), never the raw
// difference, because a period shorter than the reclamation overhead
// must contribute zero work — a negative contribution silently corrupts
// E(S;p) sums and the inductive bounds of system 3.6. The repository
// routes the operator through sched.PositiveSub.
//
// In the simulator packages (nowsim, core, sched, faultsim) the
// analyzer flags floating-point subtractions whose subtrahend is an
// overhead/cost quantity (an identifier or field named c, cost, or
// *overhead) unless the enclosing function guards the pair with an
// ordering comparison the way PositiveSub itself does. Using the flow
// engine's RawSub summaries it also flags calls to wrappers — in any
// analyzed package, across package boundaries via facts — that return
// the raw difference of their arguments, so hiding `t - c` behind a
// helper does not evade the check.
package nonnegwork

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/flow"
)

var Analyzer = &analysis.Analyzer{
	Name: "nonnegwork",
	Doc:  "flag raw t-c work arithmetic bypassing sched.PositiveSub, interprocedurally",
	Run:  run,
}

// guarded names the simulator packages, matching determinism's set.
var guarded = map[string]bool{
	"nowsim":   true,
	"core":     true,
	"sched":    true,
	"faultsim": true,
}

func run(pass *analysis.Pass) error {
	// Build (and export) flow facts even when this package is not
	// guarded: downstream guarded packages need the summaries to see
	// through wrappers defined here.
	in, err := flow.Of(pass)
	if err != nil {
		return err
	}
	if !guarded[analysis.PkgBase(pass.Pkg.Path())] {
		return nil
	}
	for _, fi := range in.Funcs {
		if fi.Obj.Name() == "PositiveSub" {
			continue // the ⊖ implementation itself
		}
		checkDirect(pass, in, fi)
		checkCalls(pass, in, fi)
	}
	return nil
}

// overheadName reports whether name denotes an overhead/cost quantity.
func overheadName(name string) bool {
	l := strings.ToLower(name)
	return l == "c" || l == "cost" || strings.HasSuffix(l, "overhead") || strings.HasSuffix(l, "cost")
}

// overheadLike reports whether e names an overhead/cost quantity: a
// variable (after alias resolution), a field selection, or an accessor
// method call with such a name.
func overheadLike(fi *flow.FuncInfo, info *types.Info, e ast.Expr) bool {
	e = ast.Unparen(e)
	switch e := e.(type) {
	case *ast.Ident:
		if v := fi.Root(e, info); v != nil {
			return overheadName(v.Name())
		}
		return overheadName(e.Name)
	case *ast.SelectorExpr:
		return overheadName(e.Sel.Name)
	case *ast.CallExpr:
		if sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok {
			return overheadName(sel.Sel.Name)
		}
	}
	return false
}

func isFloat(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// checkDirect flags raw `x - overhead` expressions in the function
// body, except when the function compares the same pair first (the
// PositiveSub guard shape).
func checkDirect(pass *analysis.Pass, in *flow.Info, fi *flow.FuncInfo) {
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || be.Op != token.SUB {
			return true
		}
		if !isFloat(in.TypesInfo, be) || !overheadLike(fi, in.TypesInfo, be.Y) {
			return true
		}
		x := fi.Root(be.X, in.TypesInfo)
		y := fi.Root(be.Y, in.TypesInfo)
		if fi.ComparedPair(x, y) {
			return true // clamped by an explicit ordering guard
		}
		pass.ReportRangef(be,
			"raw subtraction of overhead/cost %q can go negative: route work quantities through sched.PositiveSub (the paper's t ⊖ c)",
			exprName(be.Y))
		return true
	})
}

// checkCalls flags calls whose callee summary says the result is the
// raw difference of two arguments, with the subtrahend an
// overhead/cost quantity at this call site.
func checkCalls(pass *analysis.Pass, in *flow.Info, fi *flow.FuncInfo) {
	for _, site := range fi.Calls {
		sum, ok := in.SummaryOf(site.Callee)
		if !ok {
			continue
		}
		for _, rs := range sum.RawSubs {
			y := site.ArgExpr(rs.Y)
			if y == nil || !overheadLike(fi, in.TypesInfo, y) || !isFloat(in.TypesInfo, y) {
				continue
			}
			pass.ReportRangef(site.Call,
				"call to %s hides a raw work subtraction (returns its argument minus %q unclamped): use sched.PositiveSub",
				site.Callee.Name(), exprName(y))
			break
		}
	}
}

// exprName renders the subtrahend for the diagnostic.
func exprName(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprName(e.X) + "." + e.Sel.Name
	case *ast.CallExpr:
		return exprName(e.Fun) + "()"
	}
	return "the subtrahend"
}
