// Package work is a fixture dependency: it defines a wrapper returning
// a raw difference. The analyzer does not report here (the package is
// not a guarded simulator package) but exports its flow summary, so
// guarded importers see the raw subtraction through the call.
package work

// Budget returns the raw, sign-preserving difference.
func Budget(t, c float64) float64 { return t - c }

// SafeBudget clamps like PositiveSub; callers are clean.
func SafeBudget(t, c float64) float64 {
	if t <= c {
		return 0
	}
	return t - c
}
