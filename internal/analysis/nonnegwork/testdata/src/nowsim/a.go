// Fixture for the nonnegwork analyzer, named nowsim so the guarded
// package gate applies.
package nowsim

import "work"

// Config mirrors the simulator's overhead-carrying config.
type Config struct{ Overhead float64 }

// PositiveSub is the paper's ⊖ operator; its own subtraction is exempt.
func PositiveSub(x, y float64) float64 {
	if x <= y {
		return 0
	}
	return x - y
}

// True positive: raw subtraction of an overhead identifier.
func direct(t, c float64) float64 {
	return t - c // want "route work quantities through sched.PositiveSub"
}

// True positive: raw subtraction of an overhead field.
func viaField(t float64, cfg Config) float64 {
	return t - cfg.Overhead // want "route work quantities through sched.PositiveSub"
}

// localBudget is a same-package wrapper hiding the subtraction; it is
// itself a true positive at the subtraction site.
func localBudget(t, c float64) float64 {
	return t - c // want "route work quantities through sched.PositiveSub"
}

// True positive (interprocedural): the wrapper's summary exposes the
// raw difference.
func viaWrapper(t, c float64) float64 {
	return localBudget(t, c) // want "hides a raw work subtraction"
}

// True positive (cross-package): the dependency's summary arrives as
// session facts.
func viaDep(t, c float64) float64 {
	return work.Budget(t, c) // want "hides a raw work subtraction"
}

// Non-finding: routed through the helper.
func viaHelper(t, c float64) float64 {
	return PositiveSub(t, c)
}

// Non-finding: the function guards the pair like PositiveSub does.
func guardedSub(t, c float64) float64 {
	if t <= c {
		return 0
	}
	return t - c
}

// Non-finding: the clamped dependency wrapper.
func viaSafeDep(t, c float64) float64 {
	return work.SafeBudget(t, c)
}

// Non-finding: the subtrahend is not an overhead quantity.
func plainDifference(a, b float64) float64 {
	return a - b
}

// Non-finding: integer arithmetic is out of scope.
func intLeft(i, c int) int {
	return i - c
}

// Non-finding: the subtrahend is a derived expression, not an
// overhead quantity.
func fraction(t, c float64) float64 {
	return 1 - c/t
}

// Non-finding (suppressed): an analytic formula where the sign is the
// point.
func analytic(t, c float64) float64 {
	//lint:allow nonnegwork closed-form slope, negative values intended
	return t - c
}
