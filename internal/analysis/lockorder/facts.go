package lockorder

import (
	"encoding/json"
	"fmt"
	"sort"
)

// FactsNamespace keys lockorder's per-function locking summaries in an
// analysis.Session (and therefore in vetx facts files).
const FactsNamespace = "lockorder"

// An Edge is one observed acquisition ordering: To was acquired at Pos
// (base "file.go:line") while From was held, inside function Fn.
type Edge struct {
	From string `json:"from"`
	To   string `json:"to"`
	Pos  string `json:"pos"`
	Fn   string `json:"fn"`
}

// A Summary is one function's exported locking behavior: the lock
// identities it may (transitively) acquire, and the order edges its
// body establishes — both instantiated through call sites, with
// "param:N" identities left relative to the function's own normalized
// parameters for callers to instantiate.
type Summary struct {
	Acquires []string `json:"acquires,omitempty"`
	Edges    []Edge   `json:"edges,omitempty"`
}

// Summaries maps a function's full name to its summary — the
// per-package facts payload.
type Summaries map[string]Summary

// Encode packs summaries deterministically (sorted function names;
// Acquires and Edges are sorted by the builder).
func (s Summaries) Encode() ([]byte, error) {
	names := make([]string, 0, len(s))
	for name := range s {
		names = append(names, name)
	}
	sort.Strings(names)
	type entry struct {
		Name    string  `json:"name"`
		Summary Summary `json:"summary"`
	}
	entries := make([]entry, 0, len(names))
	for _, name := range names {
		entries = append(entries, entry{name, s[name]})
	}
	return json.Marshal(entries)
}

// DecodeSummaries unpacks a facts blob produced by Encode. A nil or
// empty blob yields an empty map.
func DecodeSummaries(data []byte) (Summaries, error) {
	out := make(Summaries)
	if len(data) == 0 {
		return out, nil
	}
	var entries []struct {
		Name    string  `json:"name"`
		Summary Summary `json:"summary"`
	}
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("lockorder: decoding summaries: %v", err)
	}
	for _, e := range entries {
		out[e.Name] = e.Summary
	}
	return out, nil
}
