package lockorder_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/lockorder"
)

// TestLockOrder runs the analyzer over a two-package fixture: the
// helper package's summaries (one concrete edge, one param-relative)
// cross the boundary as facts and are instantiated at the analyzed
// package's call sites.
func TestLockOrder(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lockorder.Analyzer, "locka", "lockmain")
}
