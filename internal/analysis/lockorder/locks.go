package lockorder

// Lock identity and the per-function acquisition scan.
//
// A lock's identity is type-based: x.mu names "pkg.T.mu" for any x of
// named type T, an embedded sync.Mutex promoted through t.Lock() names
// "pkg.T.Mutex", and a package-level mutex names "pkg.varname". A
// mutex reached through a parameter (or receiver) of the function gets
// the relative identity "param:N" (normalized index, receiver first),
// which callers instantiate with the identity of the argument they
// pass — the flow engine's CallSite.ArgExpr supplies the expression.
// A mutex the scan cannot name (a local variable, an element of a
// collection) is skipped entirely: unnamed locks contribute neither
// edges nor balance findings.
//
// The scan itself is a forward may-held dataflow over the function's
// CFG: the state maps held identities to their earliest acquisition
// position, joined by union at merges. Lock/RLock adds to the state
// (recording an order edge from every lock already held), and
// Unlock/RUnlock removes; TryLock and TryRLock are ignored (their
// acquisition is conditional on the return value, which the lattice
// does not track). Deferred and go'd calls are skipped during the body
// walk — a deferred unlock releases at function exit, where the
// balance check credits it against whatever the exit state still
// holds.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"

	"repro/internal/analysis"
	"repro/internal/analysis/cfg"
	"repro/internal/analysis/dataflow"
	"repro/internal/analysis/flow"
)

type lockOp int

const (
	opNone lockOp = iota
	opAcquire
	opRelease
)

// mutexOp classifies a call as a sync.Mutex / sync.RWMutex operation,
// returning the receiver selector for identity resolution.
func mutexOp(info *types.Info, call *ast.CallExpr) (lockOp, *ast.SelectorExpr) {
	fun, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return opNone, nil
	}
	fn, _ := info.Uses[fun.Sel].(*types.Func)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return opNone, nil
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return opNone, nil
	}
	rt := sig.Recv().Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok {
		return opNone, nil
	}
	if n := named.Obj().Name(); n != "Mutex" && n != "RWMutex" {
		return opNone, nil
	}
	switch fn.Name() {
	case "Lock", "RLock":
		return opAcquire, fun
	case "Unlock", "RUnlock":
		return opRelease, fun
	}
	return opNone, nil
}

// shortPos renders "file.go:line" with the base filename, stable
// across checkout roots (facts strings must not embed absolute paths).
func shortPos(fset *token.FileSet, p token.Pos) string {
	pos := fset.Position(p)
	name := pos.Filename
	for i := len(name) - 1; i >= 0; i-- {
		if name[i] == '/' {
			name = name[i+1:]
			break
		}
	}
	return name + ":" + strconv.Itoa(pos.Line)
}

func deref(t types.Type) types.Type {
	if t == nil {
		return nil
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

func namedID(n *types.Named) string {
	obj := n.Obj()
	if obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

// lockID names the mutex a Lock/Unlock selector operates on. For a
// promoted method (t.Lock() with an embedded Mutex) the identity walks
// the embedding path; otherwise it is the identity of the receiver
// expression.
func lockID(info *types.Info, fi *flow.FuncInfo, sel *ast.SelectorExpr) string {
	if s, ok := info.Selections[sel]; ok && len(s.Index()) > 1 {
		named, ok := deref(info.TypeOf(sel.X)).(*types.Named)
		if !ok {
			return ""
		}
		id := namedID(named)
		if id == "" {
			return ""
		}
		cur := named.Underlying()
		for _, idx := range s.Index()[:len(s.Index())-1] {
			st, ok := cur.(*types.Struct)
			if !ok || idx >= st.NumFields() {
				return ""
			}
			f := st.Field(idx)
			id += "." + f.Name()
			cur = deref(f.Type()).Underlying()
		}
		return id
	}
	return exprID(info, fi, sel.X)
}

// exprID names the mutex an expression denotes: "pkg.T.field" for a
// field of a named type, "pkg.varname" for a package-level variable,
// "param:N" for a parameter or receiver of fi, "" when unnameable.
func exprID(info *types.Info, fi *flow.FuncInfo, e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return exprID(info, fi, e.X)
		}
	case *ast.StarExpr:
		return exprID(info, fi, e.X)
	case *ast.SelectorExpr:
		if id, ok := ast.Unparen(e.X).(*ast.Ident); ok {
			if _, isPkg := info.Uses[id].(*types.PkgName); isPkg {
				if v, ok := info.Uses[e.Sel].(*types.Var); ok && v.Pkg() != nil {
					return v.Pkg().Path() + "." + v.Name()
				}
				return ""
			}
		}
		v, ok := info.Uses[e.Sel].(*types.Var)
		if !ok || !v.IsField() {
			return ""
		}
		named, ok := deref(info.TypeOf(e.X)).(*types.Named)
		if !ok {
			return ""
		}
		if id := namedID(named); id != "" {
			return id + "." + e.Sel.Name
		}
	case *ast.Ident:
		var v *types.Var
		if u, ok := info.Uses[e].(*types.Var); ok {
			v = u
		} else if d, ok := info.Defs[e].(*types.Var); ok {
			v = d
		}
		if v == nil {
			return ""
		}
		if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Path() + "." + v.Name()
		}
		for i, p := range fi.Params {
			if p == v {
				return "param:" + strconv.Itoa(i)
			}
		}
	}
	return ""
}

// heldMap is the dataflow state: held lock identity -> earliest
// acquisition position on any path.
type heldMap map[string]token.Pos

type heldLattice struct{}

func (heldLattice) Bottom() heldMap { return nil }

func (heldLattice) Join(a, b heldMap) heldMap {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	out := make(heldMap, len(a)+len(b))
	for id, p := range a {
		out[id] = p
	}
	for id, p := range b {
		if cur, ok := out[id]; !ok || p < cur {
			out[id] = p
		}
	}
	return out
}

func (heldLattice) Equal(a, b heldMap) bool {
	if len(a) != len(b) {
		return false
	}
	for id, p := range a {
		if q, ok := b[id]; !ok || q != p {
			return false
		}
	}
	return true
}

func (heldLattice) Widen(prev, next heldMap) heldMap { return next }

// A localEdge is one order edge observed in (or instantiated into) a
// local function, carrying its real position for reporting.
type localEdge struct {
	from, to string
	pos      token.Pos
}

// A callObs is one call made to a summarized function, with the locks
// held at the site; the site supplies argument expressions for
// instantiating the callee's param-relative identities.
type callObs struct {
	callee string
	site   *flow.CallSite
	held   []string // sorted identities held at the call
	pos    token.Pos
}

// scanResult is the per-function output of the CFG scan.
type scanResult struct {
	acquires map[string]token.Pos // direct acquisitions (earliest pos)
	edges    []localEdge          // direct order edges, source order
	calls    []callObs            // composition obligations, source order
	exitHeld heldMap              // may-held at function exit
	deferred map[string]bool      // identities released by defer
}

// scanner drives one function's scan.
type scanner struct {
	pass *analysis.Pass
	fi   *flow.FuncInfo
	// callees maps local call expressions to their resolved callees
	// (several for CHA-expanded interface calls), with the site.
	callees map[*ast.CallExpr][]calleeAt

	res      scanResult
	edgeSeen map[localEdge]bool
}

type calleeAt struct {
	name string
	site *flow.CallSite
}

func scanFunc(pass *analysis.Pass, fi *flow.FuncInfo, callees map[*ast.CallExpr][]calleeAt) scanResult {
	sc := &scanner{
		pass:    pass,
		fi:      fi,
		callees: callees,
		res: scanResult{
			acquires: make(map[string]token.Pos),
			deferred: make(map[string]bool),
		},
		edgeSeen: make(map[localEdge]bool),
	}
	g := cfg.Build(fi.Decl.Body)
	res, err := dataflow.Forward(g, dataflow.Problem[heldMap]{
		Lattice: heldLattice{},
		Entry:   heldMap{},
		Transfer: func(b *cfg.Block, in heldMap) heldMap {
			env := in
			for _, n := range b.Nodes {
				env = sc.step(env, n, false)
			}
			return env
		},
	})
	if err != nil {
		return sc.res // no CFG refinement: stay silent rather than guess
	}
	for _, b := range g.Blocks {
		env := res.In[b]
		for _, n := range b.Nodes {
			env = sc.step(env, n, true)
		}
	}
	sc.res.exitHeld = res.In[g.Exit]
	for _, d := range g.Defers {
		if op, sel := mutexOp(sc.pass.TypesInfo, d.Call); op == opRelease {
			if id := lockID(sc.pass.TypesInfo, fi, sel); id != "" {
				sc.res.deferred[id] = true
			}
		}
	}
	return sc.res
}

// step interprets one CFG node: mutex operations update the held set;
// when emit is set (the post-fixpoint replay), edges and call
// observations are recorded.
func (sc *scanner) step(held heldMap, n ast.Node, emit bool) heldMap {
	if rh, ok := n.(*cfg.RangeHeader); ok {
		n = rh.Range.X
	}
	info := sc.pass.TypesInfo
	ast.Inspect(n, func(n ast.Node) bool {
		switch n.(type) {
		// Literal bodies run elsewhere; deferred calls run at exit (the
		// balance check credits them); go'd calls run on another
		// goroutine with its own held set.
		case *ast.FuncLit, *ast.DeferStmt, *ast.GoStmt:
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch op, sel := mutexOp(info, call); op {
		case opAcquire:
			id := lockID(info, sc.fi, sel)
			if id == "" {
				return true
			}
			if emit {
				for h := range held {
					if h != id {
						sc.addEdge(localEdge{h, id, call.Pos()})
					}
				}
				if _, ok := sc.res.acquires[id]; !ok {
					sc.res.acquires[id] = call.Pos()
				}
			}
			if _, ok := held[id]; !ok {
				next := make(heldMap, len(held)+1)
				for k, v := range held {
					next[k] = v
				}
				next[id] = call.Pos()
				held = next
			}
		case opRelease:
			id := lockID(info, sc.fi, sel)
			if id == "" {
				return true
			}
			if _, ok := held[id]; ok {
				next := make(heldMap, len(held))
				for k, v := range held {
					if k != id {
						next[k] = v
					}
				}
				held = next
			}
		default:
			if !emit {
				return true
			}
			for _, ca := range sc.callees[call] {
				sc.res.calls = append(sc.res.calls, callObs{
					callee: ca.name,
					site:   ca.site,
					held:   sortedIDs(held),
					pos:    call.Pos(),
				})
			}
		}
		return true
	})
	return held
}

func (sc *scanner) addEdge(e localEdge) {
	if sc.edgeSeen[e] {
		return
	}
	sc.edgeSeen[e] = true
	sc.res.edges = append(sc.res.edges, e)
}

func sortedIDs(held heldMap) []string {
	if len(held) == 0 {
		return nil
	}
	out := make([]string, 0, len(held))
	for id := range held {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}
