// Package lockorder verifies lock discipline across the analyzed
// package set: a consistent global acquisition order (no cycles in the
// lock-order graph) and release on every path (no Lock without a
// dominating Unlock or defer). The simulator's serving path takes
// mutexes in several layers — cache shard, coalescing flight group,
// stats — and the paper's recurrence only holds when a stolen period's
// critical sections are short and deadlock-free; an inversion between
// two of those locks is a hang that strikes exactly when a workstation
// reclaim and a cache fill race, the least reproducible moment
// available.
//
// The analyzer builds per-function summaries (see locks.go for the
// identity scheme and the may-held CFG scan), composes them through
// the callgraph package's resolved call edges — static calls and
// CHA-resolved interface calls alike — and exports the composed
// summaries as session facts, so the order graph spans package
// boundaries the same way hotalloc's reachability does. A cycle is
// reported once, anchored at the first local acquisition that
// completes it, with the full witness chain (who acquires what while
// holding what, and where) in the message; an unbalanced Lock is
// reported at the acquisition.
//
// # Soundness caveats
//
// Identity is type-based: every instance of type T shares the lock
// "pkg.T.mu". Hand-over-hand locking of same-typed nodes therefore
// reads as a self-inversion — suppress with //lint:allow lockorder and
// a reason. Calls through plain function values are invisible (the
// callgraph has no edge), goroutine bodies hold their own lock sets,
// and a conditional defer counts as releasing on every path (the cfg
// package's standard over-approximation). Mutexes the scan cannot
// name — locals, map or slice elements — are not tracked at all.
package lockorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/callgraph"
	"repro/internal/analysis/flow"
)

// Name is the analyzer's name, the token //lint:allow suppressions
// use.
const Name = "lockorder"

var Analyzer = &analysis.Analyzer{
	Name: Name,
	Doc:  "verify lock acquisition order (cycle-free across packages) and release on every path",
	Run:  run,
}

// maxComposeRounds bounds the local fixpoint; identities are drawn
// from a finite program-text universe, so this is a backstop, not a
// tuning knob.
const maxComposeRounds = 32

type fnState struct {
	fi       *flow.FuncInfo
	acquires map[string]bool
	edges    []localEdge
	edgeSeen map[localEdge]bool
	scan     scanResult
}

type info struct {
	// order preserves flow's source declaration order for deterministic
	// reporting.
	order    []string
	local    map[string]*fnState
	balance  []balanceFinding
	imported map[string]Summaries
}

type balanceFinding struct {
	id  string
	pos token.Pos
}

func infoOf(pass *analysis.Pass) (*info, error) {
	v, err := pass.Shared(Name, func() (interface{}, error) {
		return build(pass)
	})
	if err != nil {
		return nil, err
	}
	return v.(*info), nil
}

func build(pass *analysis.Pass) (*info, error) {
	g, err := callgraph.Of(pass)
	if err != nil {
		return nil, err
	}
	in := &info{
		local:    make(map[string]*fnState),
		imported: make(map[string]Summaries),
	}
	sup := analysis.CollectSuppressions(pass.Fset, pass.Files)

	// Scan every local function, resolving its call sites through the
	// callgraph (CHA included) so composition follows the same edges
	// reachability does.
	for _, fi := range g.Flow.Funcs {
		name := fi.Obj.FullName()
		byCall := make(map[*ast.CallExpr][]calleeAt)
		edges := g.Out(name, "")
		sort.SliceStable(edges, func(i, j int) bool { return edges[i].To < edges[j].To })
		for _, e := range edges {
			if e.Site != nil {
				byCall[e.Site.Call] = append(byCall[e.Site.Call], calleeAt{name: e.To, site: e.Site})
			}
		}
		st := &fnState{
			fi:       fi,
			acquires: make(map[string]bool),
			edgeSeen: make(map[localEdge]bool),
			scan:     scanFunc(pass, fi, byCall),
		}
		for id := range st.scan.acquires {
			st.acquires[id] = true
		}
		for _, e := range st.scan.edges {
			st.addEdge(e)
		}
		in.order = append(in.order, name)
		in.local[name] = st

		for id, pos := range st.scan.exitHeld {
			if st.scan.deferred[id] {
				continue
			}
			if sup.Allowed(pass.Fset, pos, Name) {
				continue
			}
			in.balance = append(in.balance, balanceFinding{id: id, pos: pos})
		}
	}
	sort.Slice(in.balance, func(i, j int) bool { return in.balance[i].pos < in.balance[j].pos })

	// Compose: instantiate callee summaries at each call site until the
	// acquire sets and edge sets stop growing.
	for round := 0; round < maxComposeRounds; round++ {
		changed := false
		for _, name := range in.order {
			st := in.local[name]
			for _, obs := range st.scan.calls {
				cs := in.summaryOf(pass, obs.callee)
				var instAcq []string
				for _, a := range cs.acq {
					if ia := instantiate(pass, st.fi, obs, a); ia != "" {
						instAcq = append(instAcq, ia)
					}
				}
				for _, a := range instAcq {
					if !st.acquires[a] {
						st.acquires[a] = true
						changed = true
					}
					for _, h := range obs.held {
						if h != a && st.addEdge(localEdge{h, a, obs.pos}) {
							changed = true
						}
					}
				}
				for _, e := range cs.paramEdges() {
					from := instantiate(pass, st.fi, obs, e.From)
					to := instantiate(pass, st.fi, obs, e.To)
					if from == "" || to == "" || from == to {
						continue
					}
					if st.addEdge(localEdge{from, to, obs.pos}) {
						changed = true
					}
				}
			}
		}
		if !changed {
			break
		}
	}

	// Export composed summaries as facts.
	out := make(Summaries, len(in.local))
	for _, name := range in.order {
		st := in.local[name]
		s := Summary{Acquires: sortedSet(st.acquires)}
		for _, e := range st.edges {
			s.Edges = append(s.Edges, Edge{
				From: e.from, To: e.to,
				Pos: shortPos(pass.Fset, e.pos), Fn: name,
			})
		}
		sort.Slice(s.Edges, func(i, j int) bool {
			a, b := s.Edges[i], s.Edges[j]
			if a.From != b.From {
				return a.From < b.From
			}
			if a.To != b.To {
				return a.To < b.To
			}
			return a.Pos < b.Pos
		})
		if len(s.Acquires) == 0 && len(s.Edges) == 0 {
			continue
		}
		out[name] = s
	}
	data, err := out.Encode()
	if err != nil {
		return nil, err
	}
	pass.ExportFacts(FactsNamespace, data)
	return in, nil
}

func (st *fnState) addEdge(e localEdge) bool {
	if st.edgeSeen[e] {
		return false
	}
	st.edgeSeen[e] = true
	st.edges = append(st.edges, e)
	return true
}

// calleeSummary is the composition view of a callee: its (possibly
// param-relative) acquire set and its order edges.
type calleeSummary struct {
	acq   []string
	edges []Edge
}

// paramEdges returns the callee edges with at least one param-relative
// endpoint — the only ones a caller must instantiate into its own
// summary (fully concrete callee edges enter the global graph through
// the callee itself).
func (c calleeSummary) paramEdges() []Edge {
	var out []Edge
	for _, e := range c.edges {
		if isParam(e.From) || isParam(e.To) {
			out = append(out, e)
		}
	}
	return out
}

func (in *info) summaryOf(pass *analysis.Pass, name string) calleeSummary {
	if st, ok := in.local[name]; ok {
		var edges []Edge
		for _, e := range st.edges {
			edges = append(edges, Edge{From: e.from, To: e.to})
		}
		return calleeSummary{acq: sortedSet(st.acquires), edges: edges}
	}
	path := callgraph.PkgPathOf(name)
	if path == "" || path == pass.Pkg.Path() {
		return calleeSummary{}
	}
	sums, ok := in.imported[path]
	if !ok {
		var err error
		sums, err = DecodeSummaries(pass.Facts(path, FactsNamespace))
		if err != nil {
			sums = Summaries{}
		}
		in.imported[path] = sums
	}
	s := sums[name]
	return calleeSummary{acq: s.Acquires, edges: s.Edges}
}

func isParam(id string) bool { return strings.HasPrefix(id, "param:") }

// instantiate maps a callee identity into the caller's namespace:
// concrete identities pass through, "param:N" resolves to the identity
// of the argument at normalized index N (which may itself be a
// parameter of the caller, composing through wrappers).
func instantiate(pass *analysis.Pass, fi *flow.FuncInfo, obs callObs, id string) string {
	if !isParam(id) {
		return id
	}
	n, err := strconv.Atoi(id[len("param:"):])
	if err != nil || obs.site == nil {
		return ""
	}
	arg := obs.site.ArgExpr(n)
	if arg == nil {
		return ""
	}
	return exprID(pass.TypesInfo, fi, arg)
}

// --- reporting ---------------------------------------------------------

// A gEdge is one edge of the assembled cross-package order graph.
type gEdge struct {
	to, fn, pos string
}

func run(pass *analysis.Pass) error {
	in, err := infoOf(pass)
	if err != nil {
		return err
	}
	for _, b := range in.balance {
		pass.Reportf(b.pos, "%s may be held on return (no unlock or defer on some path)", short(b.id))
	}

	adj := in.globalGraph(pass)
	sup := analysis.CollectSuppressions(pass.Fset, pass.Files)
	seen := make(map[string]bool)
	for _, name := range in.order {
		st := in.local[name]
		for _, e := range st.edges {
			if isParam(e.from) || isParam(e.to) {
				continue
			}
			if sup.Allowed(pass.Fset, e.pos, Name) {
				continue
			}
			path := bfsPath(adj, e.to, e.from)
			if path == nil {
				continue
			}
			key := cycleKey(e, path)
			if seen[key] {
				continue
			}
			seen[key] = true
			parts := []string{short(e.from), short(e.to) + " (here)"}
			for _, h := range path {
				parts = append(parts, short(h.to)+" (in "+short(h.fn)+" at "+h.pos+")")
			}
			pass.Reportf(e.pos, "lock-order cycle: %s", strings.Join(parts, " -> "))
		}
	}
	return nil
}

// globalGraph unions the order edges of every local function with
// those in the facts of every package in the import closure, keyed by
// concrete lock identity.
func (in *info) globalGraph(pass *analysis.Pass) map[string][]gEdge {
	type keyed struct {
		from string
		e    gEdge
	}
	var all []keyed
	for _, name := range in.order {
		st := in.local[name]
		for _, e := range st.edges {
			if isParam(e.from) || isParam(e.to) {
				continue
			}
			all = append(all, keyed{e.from, gEdge{to: e.to, fn: name, pos: shortPos(pass.Fset, e.pos)}})
		}
	}
	for _, path := range importClosure(pass.Pkg) {
		sums, err := DecodeSummaries(pass.Facts(path, FactsNamespace))
		if err != nil {
			continue
		}
		fnames := make([]string, 0, len(sums))
		for fname := range sums {
			fnames = append(fnames, fname)
		}
		sort.Strings(fnames)
		for _, fname := range fnames {
			for _, e := range sums[fname].Edges {
				if isParam(e.From) || isParam(e.To) {
					continue
				}
				all = append(all, keyed{e.From, gEdge{to: e.To, fn: e.Fn, pos: e.Pos}})
			}
		}
	}
	adj := make(map[string][]gEdge)
	dedup := make(map[string]bool)
	for _, k := range all {
		dk := k.from + "\x00" + k.e.to
		if dedup[dk] {
			continue
		}
		dedup[dk] = true
		adj[k.from] = append(adj[k.from], k.e)
	}
	for from := range adj {
		es := adj[from]
		sort.Slice(es, func(i, j int) bool { return es[i].to < es[j].to })
	}
	return adj
}

// importClosure lists the import paths reachable from pkg, sorted.
func importClosure(pkg *types.Package) []string {
	seen := make(map[string]bool)
	var out []string
	var walk func(pkgs []*types.Package)
	walk = func(pkgs []*types.Package) {
		for _, p := range pkgs {
			if seen[p.Path()] {
				continue
			}
			seen[p.Path()] = true
			out = append(out, p.Path())
			walk(p.Imports())
		}
	}
	walk(pkg.Imports())
	sort.Strings(out)
	return out
}

// A hop is one step of a BFS witness path.
type hop struct {
	to, fn, pos string
}

// bfsPath finds the shortest edge path from src to dst in adj, nil
// when unreachable. Neighbor order is deterministic (sorted).
func bfsPath(adj map[string][]gEdge, src, dst string) []hop {
	type parentEdge struct {
		from string
		e    gEdge
	}
	parent := map[string]parentEdge{src: {}}
	queue := []string{src}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, e := range adj[cur] {
			if _, ok := parent[e.to]; ok {
				continue
			}
			parent[e.to] = parentEdge{from: cur, e: e}
			if e.to == dst {
				var rev []hop
				for n := dst; n != src; {
					pe := parent[n]
					rev = append(rev, hop{to: pe.e.to, fn: pe.e.fn, pos: pe.e.pos})
					n = pe.from
				}
				out := make([]hop, 0, len(rev))
				for i := len(rev) - 1; i >= 0; i-- {
					out = append(out, rev[i])
				}
				return out
			}
			queue = append(queue, e.to)
		}
	}
	return nil
}

// cycleKey canonicalizes the set of locks on a cycle so each cycle is
// reported once regardless of which edge anchors it.
func cycleKey(e localEdge, path []hop) string {
	ids := map[string]bool{e.from: true, e.to: true}
	for _, h := range path {
		ids[h.to] = true
	}
	return strings.Join(sortedSet(ids), "\x00")
}

// short compresses a lock or function identity for diagnostics:
// package path down to its base, receiver parens kept.
func short(id string) string {
	if strings.HasPrefix(id, "(") {
		if i := strings.Index(id, ")"); i >= 0 {
			inner, rest := id[1:i], id[i+1:]
			star := ""
			if strings.HasPrefix(inner, "*") {
				star, inner = "*", inner[1:]
			}
			return "(" + star + baseOf(inner) + ")" + rest
		}
	}
	return baseOf(id)
}

func baseOf(s string) string {
	if i := strings.LastIndex(s, "/"); i >= 0 {
		return s[i+1:]
	}
	return s
}

func sortedSet(m map[string]bool) []string {
	if len(m) == 0 {
		return nil
	}
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
