// Package locka is the fixture dependency: its exported summaries
// carry both a concrete order edge (Pair.A before Pair.B) and a
// param-relative one (Grab locks its arguments in argument order),
// which importers instantiate at their call sites. The package itself
// is clean: every path releases what it takes, and no cycle closes
// locally.
package locka

import "sync"

// Pair carries two mutexes with a canonical A-then-B order.
type Pair struct {
	A, B sync.Mutex
	n    int
}

// LockBoth acquires in the canonical order.
func LockBoth(p *Pair) {
	p.A.Lock()
	defer p.A.Unlock()
	p.B.Lock()
	defer p.B.Unlock()
	p.n++
}

// Grab acquires two caller-chosen locks in argument order.
func Grab(first, second *sync.Mutex) {
	first.Lock()
	second.Lock()
	second.Unlock()
	first.Unlock()
}
