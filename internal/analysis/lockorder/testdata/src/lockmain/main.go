// Package lockmain is the fixture's analyzed package: two in-package
// inversions (one direct, one composed through locka.Grab's
// param-relative summary), one leaked lock, and a set of disciplined
// patterns that must stay silent.
package lockmain

import (
	"sync"

	"locka"
)

// Server takes mu before stats on its canonical path.
type Server struct {
	mu    sync.Mutex
	stats sync.Mutex
	n     int
}

// Update establishes the canonical order mu -> stats. The cycle with
// Report below is anchored here: this acquisition of stats is the
// first local edge (in declaration order) that completes it.
func (s *Server) Update() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Lock() // want `lock-order cycle: lockmain\.Server\.mu -> lockmain\.Server\.stats \(here\) -> lockmain\.Server\.mu \(in \(\*lockmain\.Server\)\.Report at main\.go:\d+\)`
	s.n++
	s.stats.Unlock()
}

// Report acquires in the reverse order: the inversion.
func (s *Server) Report() int {
	s.stats.Lock()
	defer s.stats.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// SameOrder repeats the canonical order; the cycle it participates in
// is already reported at Update's anchor, so it stays silent.
func (s *Server) SameOrder() {
	s.mu.Lock()
	s.stats.Lock()
	s.stats.Unlock()
	s.mu.Unlock()
}

// Leak forgets the unlock on the early-return path.
func (s *Server) Leak(fail bool) bool {
	s.mu.Lock() // want `lockmain\.Server\.mu may be held on return \(no unlock or defer on some path\)`
	if fail {
		return false
	}
	s.mu.Unlock()
	return true
}

// Hold intentionally returns with the lock held; callers pair it with
// Release.
func (s *Server) Hold() {
	s.mu.Lock() //lint:allow lockorder intentionally returns held; paired with Release
}

// Release is Hold's counterpart.
func (s *Server) Release() {
	s.mu.Unlock()
}

// World carries two mutexes handed to locka.Grab.
type World struct {
	a, b sync.Mutex
}

// Crossed calls the helper with both argument orders: instantiating
// Grab's param:0 -> param:1 edge at each site completes a cycle, again
// anchored at the first completing edge.
func Crossed(w *World) {
	locka.Grab(&w.a, &w.b) // want `lock-order cycle: lockmain\.World\.a -> lockmain\.World\.b \(here\) -> lockmain\.World\.a \(in lockmain\.Crossed at main\.go:\d+\)`
	locka.Grab(&w.b, &w.a)
}

// Straight uses the helper consistently: no cycle, no finding.
func Straight(w *World) {
	locka.Grab(&w.a, &w.b)
	locka.Grab(&w.a, &w.b)
}

// Queue's two locks are always taken head-then-tail: clean.
type Queue struct {
	head, tail sync.Mutex
}

func (q *Queue) Push() {
	q.head.Lock()
	defer q.head.Unlock()
	q.tail.Lock()
	defer q.tail.Unlock()
}

func (q *Queue) Pop() {
	q.head.Lock()
	defer q.head.Unlock()
	q.tail.Lock()
	defer q.tail.Unlock()
}

// Opportunistic uses TryLock, whose conditional acquisition the
// analyzer deliberately ignores.
func (q *Queue) Opportunistic() bool {
	if q.tail.TryLock() {
		q.tail.Unlock()
		return true
	}
	return false
}

// Registry embeds its mutex; the promoted Lock resolves to
// lockmain.Registry.Mutex and the deferred unlock balances it.
type Registry struct {
	sync.Mutex
	m map[string]int
}

func (r *Registry) Get(k string) int {
	r.Lock()
	defer r.Unlock()
	return r.m[k]
}
