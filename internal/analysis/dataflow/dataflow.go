// Package dataflow runs forward fixpoint iteration over a cfg.Graph
// with a caller-supplied abstract domain, the generic half of the
// cslint suite's abstract-interpretation engine. The caller describes
// the domain as a Lattice (bottom, join, equality, widening) and the
// semantics as a block transfer function plus an optional edge
// transfer that refines state along branch edges (an interval analysis
// narrows x on the true edge of `x > 1`, for example).
//
// Iteration uses a reverse-postorder worklist. Termination is
// guaranteed for infinite-height domains by widening: once a loop
// head's state has been recomputed WidenAfter times, further growth at
// that head goes through Lattice.Widen, which must jump to a finite
// ascending chain (typically straight to top-like bounds). A domain of
// finite height can make Widen the identity... as long as Join
// actually stabilizes. A global iteration cap guards against
// misbehaving lattices; hitting it returns an error rather than
// silently unsound results.
//
// Must-analyses (ctxguard's "cancel called on every path") fit the
// same machinery by making Join the meet of the dual lattice
// (intersection) and Bottom the universe.
package dataflow

import (
	"fmt"

	"repro/internal/analysis/cfg"
)

// A Lattice describes the abstract domain of one analysis over states
// of type S. States must be treated as immutable by Join and Widen:
// returning one of the arguments is fine, mutating it is not, because
// the engine stores states on blocks and edges.
type Lattice[S any] interface {
	// Bottom is the identity of Join: the state of unreached code.
	Bottom() S
	// Join computes the least upper bound of two states.
	Join(a, b S) S
	// Equal reports whether two states are indistinguishable; the
	// fixpoint stops when every block's input is Equal to its previous
	// input.
	Equal(a, b S) bool
	// Widen accelerates convergence at loop heads: it must return a
	// state at least as large as next, on an ascending chain that
	// reaches a fixed point in finitely many steps. Domains of finite
	// height can simply return next.
	Widen(prev, next S) S
}

// A Problem is one forward analysis instance.
type Problem[S any] struct {
	Lattice Lattice[S]
	// Entry is the state on entry to the function.
	Entry S
	// Transfer computes the block's output state from its input,
	// interpreting the block's nodes in order.
	Transfer func(b *cfg.Block, in S) S
	// EdgeTransfer, when non-nil, refines the state flowing along e
	// (whose From block produced out). Returning out unchanged is
	// always sound.
	EdgeTransfer func(e *cfg.Edge, out S) S
	// WidenAfter is the number of recomputations of a loop head's
	// input before widening kicks in; 0 means the default (3).
	WidenAfter int
}

// A Result carries the fixpoint states: In[b] is the joined input of
// block b, Out[b] the result of its transfer.
type Result[S any] struct {
	In, Out map[*cfg.Block]S
}

// maxSteps bounds total block recomputations; a correct lattice with
// widening converges orders of magnitude sooner.
const maxSteps = 100000

// Forward computes the forward fixpoint of p over g.
func Forward[S any](g *cfg.Graph, p Problem[S]) (*Result[S], error) {
	lat := p.Lattice
	widenAfter := p.WidenAfter
	if widenAfter <= 0 {
		widenAfter = 3
	}
	res := &Result[S]{
		In:  make(map[*cfg.Block]S, len(g.Blocks)),
		Out: make(map[*cfg.Block]S, len(g.Blocks)),
	}
	for _, b := range g.Blocks {
		res.In[b] = lat.Bottom()
		res.Out[b] = lat.Bottom()
	}
	res.In[g.Entry] = p.Entry

	// Worklist in RPO: blocks are indexed in reverse postorder by the
	// cfg builder, so popping the lowest index first visits
	// predecessors before successors on acyclic stretches.
	inList := make([]bool, len(g.Blocks))
	visits := make([]int, len(g.Blocks))
	list := make([]*cfg.Block, 0, len(g.Blocks))
	push := func(b *cfg.Block) {
		if !inList[b.Index] {
			inList[b.Index] = true
			list = append(list, b)
		}
	}
	pop := func() *cfg.Block {
		best := 0
		for i := 1; i < len(list); i++ {
			if list[i].Index < list[best].Index {
				best = i
			}
		}
		b := list[best]
		list[best] = list[len(list)-1]
		list = list[:len(list)-1]
		inList[b.Index] = false
		return b
	}
	for _, b := range g.Blocks {
		push(b)
	}

	for steps := 0; len(list) > 0; steps++ {
		if steps > maxSteps {
			return nil, fmt.Errorf("dataflow: no convergence after %d steps (lattice violates the ascending chain condition?)", maxSteps)
		}
		b := pop()
		// Join predecessor outputs through their edges.
		in := res.In[b]
		if b != g.Entry {
			in = lat.Bottom()
			for _, e := range b.Preds {
				s := res.Out[e.From]
				if p.EdgeTransfer != nil {
					s = p.EdgeTransfer(e, s)
				}
				in = lat.Join(in, s)
			}
		}
		visits[b.Index]++
		if b.LoopHead() && visits[b.Index] > widenAfter {
			in = lat.Widen(res.In[b], in)
		}
		if visits[b.Index] > 1 && lat.Equal(in, res.In[b]) {
			continue
		}
		res.In[b] = in
		out := p.Transfer(b, in)
		if lat.Equal(out, res.Out[b]) && visits[b.Index] > 1 {
			continue
		}
		res.Out[b] = out
		for _, e := range b.Succs {
			push(e.To)
		}
	}
	return res, nil
}
