package dataflow

import (
	"go/ast"
	"go/parser"
	"go/token"
	"sort"
	"strings"
	"testing"

	"repro/internal/analysis/cfg"
)

func buildGraph(t *testing.T, src string) *cfg.Graph {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "x.go", "package p\n"+src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			return cfg.Build(fd.Body)
		}
	}
	t.Fatal("no function")
	return nil
}

// setLattice is a finite powerset domain over variable names.
type setLattice struct{}

func (setLattice) Bottom() map[string]bool { return nil }
func (setLattice) Join(a, b map[string]bool) map[string]bool {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	out := make(map[string]bool, len(a)+len(b))
	for k := range a {
		out[k] = true
	}
	for k := range b {
		out[k] = true
	}
	return out
}
func (setLattice) Equal(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}
func (setLattice) Widen(prev, next map[string]bool) map[string]bool { return next }

func names(s map[string]bool) string {
	var out []string
	for k := range s {
		out = append(out, k)
	}
	sort.Strings(out)
	return strings.Join(out, ",")
}

// assignedVars transfers a block by adding every plainly assigned
// identifier.
func assignedVars(b *cfg.Block, in map[string]bool) map[string]bool {
	out := in
	add := func(name string) {
		next := make(map[string]bool, len(out)+1)
		for k := range out {
			next[k] = true
		}
		next[name] = true
		out = next
	}
	for _, n := range b.Nodes {
		if as, ok := n.(*ast.AssignStmt); ok {
			for _, lhs := range as.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
					add(id.Name)
				}
			}
		}
	}
	return out
}

func TestForwardJoinsBranches(t *testing.T) {
	g := buildGraph(t, `func f(c bool) {
		a := 1
		if c {
			b := 2
			_ = b
		} else {
			d := 3
			_ = d
		}
		e := 4
		_ = e
	}`)
	res, err := Forward(g, Problem[map[string]bool]{
		Lattice:  setLattice{},
		Entry:    map[string]bool{},
		Transfer: assignedVars,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := names(res.In[g.Exit])
	// Exit sees the union of both arms plus the common code.
	if got != "a,b,d,e" {
		t.Fatalf("exit in-state = %q, want a,b,d,e", got)
	}
}

func TestForwardLoopFixpoint(t *testing.T) {
	g := buildGraph(t, `func f(n int) {
		i := 0
		for i < n {
			j := i
			_ = j
			i = i + 1
		}
		k := 9
		_ = k
	}`)
	res, err := Forward(g, Problem[map[string]bool]{
		Lattice:  setLattice{},
		Entry:    map[string]bool{},
		Transfer: assignedVars,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := names(res.In[g.Exit]); got != "i,j,k" {
		t.Fatalf("exit in-state = %q, want i,j,k", got)
	}
}

// boundLattice is an infinite-height counter domain: the abstract
// value is the maximum number of increments seen on any path, with -1
// playing infinity. Without widening a loop would ratchet it forever.
type boundLattice struct{}

const inf = -1

func (boundLattice) Bottom() int { return 0 }
func (boundLattice) Join(a, b int) int {
	if a == inf || b == inf {
		return inf
	}
	if a > b {
		return a
	}
	return b
}
func (boundLattice) Equal(a, b int) bool { return a == b }
func (boundLattice) Widen(prev, next int) int {
	if next != prev {
		return inf
	}
	return next
}

func TestWideningTerminatesInfiniteHeightDomain(t *testing.T) {
	g := buildGraph(t, `func f(n int) {
		s := 0
		for i := 0; i < n; i++ {
			s = s + 1
		}
		_ = s
	}`)
	res, err := Forward(g, Problem[int]{
		Lattice: boundLattice{},
		Entry:   0,
		Transfer: func(b *cfg.Block, in int) int {
			if in == inf {
				return inf
			}
			for _, n := range b.Nodes {
				if as, ok := n.(*ast.AssignStmt); ok && as.Tok == token.ASSIGN {
					in++
					_ = as
				}
			}
			return in
		},
	})
	if err != nil {
		t.Fatalf("widening failed to converge: %v", err)
	}
	if got := res.In[g.Exit]; got != inf {
		t.Fatalf("exit bound = %d, want widened infinity", got)
	}
}

// polarity checks that EdgeTransfer sees branch conditions with their
// negation flag.
func TestEdgeRefinement(t *testing.T) {
	g := buildGraph(t, `func f(x int) {
		if x < 0 {
			a := 1
			_ = a
		} else {
			b := 2
			_ = b
		}
	}`)
	res, err := Forward(g, Problem[string]{
		Lattice: stringLattice{},
		Entry:   "top",
		Transfer: func(b *cfg.Block, in string) string {
			return in
		},
		EdgeTransfer: func(e *cfg.Edge, out string) string {
			if e.Cond == nil {
				return out
			}
			if e.Negated {
				return "nonneg"
			}
			return "neg"
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Find the blocks holding each arm's assignment.
	for _, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			as, ok := n.(*ast.AssignStmt)
			if !ok || as.Tok != token.DEFINE {
				continue
			}
			id := as.Lhs[0].(*ast.Ident)
			switch id.Name {
			case "a":
				if res.In[blk] != "neg" {
					t.Errorf("then-arm in-state = %q, want neg", res.In[blk])
				}
			case "b":
				if res.In[blk] != "nonneg" {
					t.Errorf("else-arm in-state = %q, want nonneg", res.In[blk])
				}
			}
		}
	}
}

type stringLattice struct{}

func (stringLattice) Bottom() string { return "" }
func (stringLattice) Join(a, b string) string {
	if a == "" {
		return b
	}
	if b == "" {
		return a
	}
	if a == b {
		return a
	}
	return "top"
}
func (stringLattice) Equal(a, b string) bool      { return a == b }
func (stringLattice) Widen(_, next string) string { return next }
