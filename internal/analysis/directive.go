package analysis

import (
	"go/ast"
	"strings"
)

// A Directive is one parsed //cs:<name> source annotation. The cs:
// namespace is shared by every analyzer-facing grammar in the suite —
// //cs:unit (dimension signatures, see internal/analysis/dim) and
// //cs:hotpath (allocation-budget roots, see
// internal/analysis/callgraph) — so the scanner lives here, next to
// the lint:allow scanner, and each grammar only parses its payload.
type Directive struct {
	// Name is the directive selector: the identifier immediately after
	// the "cs:" marker ("unit", "hotpath", ...).
	Name string
	// Payload is the trimmed text after the selector; "" for a bare
	// directive.
	Payload string
}

// String renders the canonical single-line form of the directive,
// without the comment marker: "cs:name payload". Parsing the render of
// a parsed directive yields the directive back (the round-trip the
// fuzz harness pins).
func (d Directive) String() string {
	if d.Payload == "" {
		return "cs:" + d.Name
	}
	return "cs:" + d.Name + " " + d.Payload
}

// ParseCSDirective parses the raw text of one comment (including its
// // or /* */ markers) as a cs: directive. It returns false for
// comments that are not directives at all; a comment that is a
// directive but has an empty or malformed selector ("//cs:",
// "//cs:9x") also returns false — selector grammars are expected to
// look the comment up by prefix and report it, which is what keeps
// typos like //cs:unitary from silently disabling checking.
func ParseCSDirective(text string) (Directive, bool) {
	text = strings.TrimPrefix(text, "//")
	text = strings.TrimPrefix(text, "/*")
	// Trim block-comment terminators to a fixpoint so no accepted
	// payload ends in "*/" — which keeps the canonical String form a
	// fixpoint of this scanner (the round trip the fuzz harness pins).
	for {
		trimmed := strings.TrimSpace(strings.TrimSuffix(text, "*/"))
		if trimmed == text {
			break
		}
		text = trimmed
	}
	if !strings.HasPrefix(text, "cs:") {
		return Directive{}, false
	}
	rest := strings.TrimPrefix(text, "cs:")
	cut := len(rest)
	for i := 0; i < len(rest); i++ {
		if rest[i] == ' ' || rest[i] == '\t' {
			cut = i
			break
		}
	}
	name, payload := rest[:cut], strings.TrimSpace(rest[cut:])
	if !validSelector(name) {
		return Directive{}, false
	}
	return Directive{Name: name, Payload: payload}, true
}

// validSelector reports whether name is a well-formed directive
// selector: a nonempty run of lowercase letters. Uppercase and digits
// are rejected on purpose — every grammar in the suite is a plain
// lowercase word, and a narrow selector charset keeps "cs:Unit" or
// "cs:2x" visible as the typos they are (via each grammar's
// prefix-match diagnostics) instead of parsing as novel directives.
func validSelector(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		if name[i] < 'a' || name[i] > 'z' {
			return false
		}
	}
	return true
}

// CommentDirective extracts the cs: directive from an AST comment.
func CommentDirective(c *ast.Comment) (Directive, bool) {
	return ParseCSDirective(c.Text)
}

// GroupDirective returns the first cs:<name> directive in a comment
// group whose selector is name, with its position.
func GroupDirective(g *ast.CommentGroup, name string) (Directive, *ast.Comment, bool) {
	if g == nil {
		return Directive{}, nil, false
	}
	for _, c := range g.List {
		if d, ok := CommentDirective(c); ok && d.Name == name {
			return d, c, true
		}
	}
	return Directive{}, nil, false
}
