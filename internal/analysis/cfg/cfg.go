// Package cfg builds intraprocedural control-flow graphs over go/ast
// function bodies, the substrate of the cslint suite's
// abstract-interpretation analyzers (unitflow's dimension propagation,
// probrange's interval analysis, ctxguard's must-cancel check). A
// graph is a set of basic blocks holding the function's statements in
// execution order, connected by edges that remember the branch
// condition they encode, so a dataflow client can refine its abstract
// state along the true and false arms of a comparison.
//
// The graph models if/else, for and range loops (with back edges),
// switch, type switch and select dispatch, break/continue (labeled and
// unlabeled), returns and explicit panic calls (edges to Exit). Defer
// registration sites additionally appear in Graph.Defers so exit-path
// analyses can treat a deferred call as running on every path out.
//
// # Soundness caveats
//
// This is a linter's CFG, not a compiler's: goto statements are
// over-approximated as jumps to Exit; fallthrough falls into the next
// case body; a call that panics is assumed to return (panic edges
// exist only for explicit panic(...) calls); and function literals are
// opaque values here — their bodies get their own graphs via Build on
// the literal, not edges in the enclosing graph.
package cfg

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// A Graph is the control-flow graph of one function body. Entry has no
// predecessors; Exit collects every return, panic and fall-off-the-end
// path and holds no statements of its own.
type Graph struct {
	Blocks []*Block
	Entry  *Block
	Exit   *Block
	// Defers lists the defer statements of the body in source order.
	// Analyses that need "runs on every exit path" semantics (ctxguard)
	// consult this list alongside the per-path blocks.
	Defers []*ast.DeferStmt
}

// A Block is a maximal straight-line sequence of AST nodes: statements,
// plus the condition expressions of the branches the block ends in.
type Block struct {
	Index int
	// Nodes holds the block's statements (and branch condition
	// expressions, last) in execution order.
	Nodes []ast.Node
	Succs []*Edge
	Preds []*Edge
}

// A RangeHeader stands in for a range loop's per-iteration binding in
// a block's node list: it exposes the Key, Value and X expressions of
// the loop without embedding the body (whose statements live in their
// own blocks). It implements ast.Node for positioning only; it is not
// a real AST node, so clients must type-switch on it before handing
// block nodes to ast.Inspect.
type RangeHeader struct {
	Range *ast.RangeStmt
}

// Pos implements ast.Node.
func (r *RangeHeader) Pos() token.Pos { return r.Range.Pos() }

// End implements ast.Node: the header ends where the ranged expression
// does, before the body.
func (r *RangeHeader) End() token.Pos { return r.Range.X.End() }

// An Edge is one control transfer. Cond, when non-nil, is the branch
// condition governing the transfer: taken when the condition evaluates
// to !Negated. Unconditional transfers have a nil Cond.
type Edge struct {
	From, To *Block
	Cond     ast.Expr
	Negated  bool
}

// Build constructs the graph of body. body is typically
// (*ast.FuncDecl).Body or (*ast.FuncLit).Body; a nil body yields a
// two-block graph with Entry wired straight to Exit.
func Build(body *ast.BlockStmt) *Graph {
	b := &builder{g: &Graph{}}
	b.g.Entry = b.newBlock()
	b.g.Exit = b.newBlock()
	cur := b.g.Entry
	if body != nil {
		cur = b.stmtList(cur, body.List)
	}
	// Falling off the end of the body reaches Exit.
	b.edge(cur, b.g.Exit, nil, false)
	b.prune()
	return b.g
}

type loopFrame struct {
	label           string
	continueTo, brk *Block
}

type builder struct {
	g     *Graph
	loops []loopFrame // innermost last; switch/select frames have nil continueTo
	label string      // pending label for the next loop/switch statement
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

// edge connects from -> to unless from is nil (unreachable flow).
func (b *builder) edge(from, to *Block, cond ast.Expr, negated bool) {
	if from == nil || to == nil {
		return
	}
	e := &Edge{From: from, To: to, Cond: cond, Negated: negated}
	from.Succs = append(from.Succs, e)
	to.Preds = append(to.Preds, e)
}

// stmtList threads the statements through cur, returning the block
// control falls out of (nil when the tail is unreachable).
func (b *builder) stmtList(cur *Block, list []ast.Stmt) *Block {
	for _, s := range list {
		cur = b.stmt(cur, s)
	}
	return cur
}

func (b *builder) add(cur *Block, n ast.Node) {
	if cur != nil {
		cur.Nodes = append(cur.Nodes, n)
	}
}

func (b *builder) stmt(cur *Block, s ast.Stmt) *Block {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return b.stmtList(cur, s.List)

	case *ast.LabeledStmt:
		// Remember the label for the loop/switch it names; other labeled
		// statements are inlined (their goto targets are approximated).
		saved := b.label
		b.label = s.Label.Name
		out := b.stmt(cur, s.Stmt)
		b.label = saved
		return out

	case *ast.IfStmt:
		if s.Init != nil {
			cur = b.stmt(cur, s.Init)
		}
		b.add(cur, s.Cond)
		thenB := b.newBlock()
		b.edge(cur, thenB, s.Cond, false)
		thenOut := b.stmtList(thenB, s.Body.List)
		after := b.newBlock()
		if s.Else != nil {
			elseB := b.newBlock()
			b.edge(cur, elseB, s.Cond, true)
			elseOut := b.stmt(elseB, s.Else)
			b.edge(elseOut, after, nil, false)
		} else {
			b.edge(cur, after, s.Cond, true)
		}
		b.edge(thenOut, after, nil, false)
		return after

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			cur = b.stmt(cur, s.Init)
		}
		head := b.newBlock()
		b.edge(cur, head, nil, false)
		after := b.newBlock()
		var bodyB *Block
		if s.Cond != nil {
			b.add(head, s.Cond)
			bodyB = b.newBlock()
			b.edge(head, bodyB, s.Cond, false)
			b.edge(head, after, s.Cond, true)
		} else {
			bodyB = b.newBlock()
			b.edge(head, bodyB, nil, false)
		}
		post := b.newBlock()
		b.loops = append(b.loops, loopFrame{label: label, continueTo: post, brk: after})
		bodyOut := b.stmtList(bodyB, s.Body.List)
		b.loops = b.loops[:len(b.loops)-1]
		b.edge(bodyOut, post, nil, false)
		if s.Post != nil {
			b.stmtInto(post, s.Post)
		}
		b.edge(post, head, nil, false)
		return after

	case *ast.RangeStmt:
		label := b.takeLabel()
		head := b.newBlock()
		b.edge(cur, head, nil, false)
		// The per-iteration key/value binding runs at the head; the
		// wrapper keeps the loop body out of the node list so clients
		// never walk body statements twice.
		b.add(head, &RangeHeader{Range: s})
		after := b.newBlock()
		bodyB := b.newBlock()
		// The loop may run zero times: head branches both ways.
		b.edge(head, bodyB, nil, false)
		b.edge(head, after, nil, false)
		b.loops = append(b.loops, loopFrame{label: label, continueTo: head, brk: after})
		bodyOut := b.stmtList(bodyB, s.Body.List)
		b.loops = b.loops[:len(b.loops)-1]
		b.edge(bodyOut, head, nil, false)
		return after

	case *ast.SwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			cur = b.stmt(cur, s.Init)
		}
		if s.Tag != nil {
			b.add(cur, s.Tag)
		}
		return b.cases(cur, label, s.Body, func(cc *ast.CaseClause) []ast.Stmt { return cc.Body })

	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			cur = b.stmt(cur, s.Init)
		}
		b.add(cur, s.Assign)
		return b.cases(cur, label, s.Body, func(cc *ast.CaseClause) []ast.Stmt { return cc.Body })

	case *ast.SelectStmt:
		label := b.takeLabel()
		after := b.newBlock()
		b.loops = append(b.loops, loopFrame{label: label, brk: after})
		anyBody := false
		for _, clause := range s.Body.List {
			comm, ok := clause.(*ast.CommClause)
			if !ok {
				continue
			}
			anyBody = true
			caseB := b.newBlock()
			b.edge(cur, caseB, nil, false)
			if comm.Comm != nil {
				caseB = b.stmt(caseB, comm.Comm)
			}
			out := b.stmtList(caseB, comm.Body)
			b.edge(out, after, nil, false)
		}
		b.loops = b.loops[:len(b.loops)-1]
		if !anyBody {
			// Empty select blocks forever; nothing reaches after.
			return nil
		}
		return after

	case *ast.ReturnStmt:
		b.add(cur, s)
		b.edge(cur, b.g.Exit, nil, false)
		return nil

	case *ast.BranchStmt:
		b.add(cur, s)
		switch s.Tok {
		case token.BREAK:
			if f := b.frame(s.Label, false); f != nil {
				b.edge(cur, f.brk, nil, false)
			}
			return nil
		case token.CONTINUE:
			if f := b.frame(s.Label, true); f != nil {
				b.edge(cur, f.continueTo, nil, false)
			}
			return nil
		case token.GOTO:
			// Over-approximation: goto jumps somewhere we do not model;
			// route it to Exit so no fall-through path is invented.
			b.edge(cur, b.g.Exit, nil, false)
			return nil
		case token.FALLTHROUGH:
			// Handled by the cases builder: fall out of the block.
			return cur
		}
		return cur

	case *ast.DeferStmt:
		b.add(cur, s)
		b.g.Defers = append(b.g.Defers, s)
		return cur

	case *ast.ExprStmt:
		b.add(cur, s)
		if isPanicCall(s.X) {
			b.edge(cur, b.g.Exit, nil, false)
			return nil
		}
		return cur

	default:
		// Assignments, declarations, sends, go statements, inc/dec,
		// empty statements: straight-line.
		b.add(cur, s)
		return cur
	}
}

// stmtInto appends a simple statement (a for-post) into blk.
func (b *builder) stmtInto(blk *Block, s ast.Stmt) {
	b.add(blk, s)
}

// cases wires a switch-shaped statement: every clause is entered from
// the dispatch block (conditions are not tracked per-case; the tag
// expression already sits in the dispatch block), bodies exit to a
// common after block, fallthrough falls into the next body.
func (b *builder) cases(cur *Block, label string, body *ast.BlockStmt, bodyOf func(*ast.CaseClause) []ast.Stmt) *Block {
	after := b.newBlock()
	b.loops = append(b.loops, loopFrame{label: label, brk: after})
	hasDefault := false
	var caseBlocks []*Block
	var caseOuts []*Block
	for _, clause := range body.List {
		cc, ok := clause.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		caseB := b.newBlock()
		b.edge(cur, caseB, nil, false)
		for _, e := range cc.List {
			b.add(caseB, e)
		}
		caseBlocks = append(caseBlocks, caseB)
		out := b.stmtList(caseB, bodyOf(cc))
		caseOuts = append(caseOuts, out)
	}
	for i, out := range caseOuts {
		if out == nil {
			continue
		}
		// A trailing fallthrough statement transfers into the next case
		// body; otherwise the body exits the switch.
		if endsInFallthrough(body.List, i) && i+1 < len(caseBlocks) {
			b.edge(out, caseBlocks[i+1], nil, false)
		} else {
			b.edge(out, after, nil, false)
		}
	}
	b.loops = b.loops[:len(b.loops)-1]
	if !hasDefault {
		// No default: the dispatch may match nothing and fall through.
		b.edge(cur, after, nil, false)
	}
	return after
}

// endsInFallthrough reports whether the i-th CaseClause of list ends in
// a fallthrough statement.
func endsInFallthrough(list []ast.Stmt, i int) bool {
	seen := -1
	for _, clause := range list {
		cc, ok := clause.(*ast.CaseClause)
		if !ok {
			continue
		}
		seen++
		if seen != i {
			continue
		}
		if len(cc.Body) == 0 {
			return false
		}
		br, ok := cc.Body[len(cc.Body)-1].(*ast.BranchStmt)
		return ok && br.Tok == token.FALLTHROUGH
	}
	return false
}

// takeLabel consumes the pending statement label.
func (b *builder) takeLabel() string {
	l := b.label
	b.label = ""
	return l
}

// frame resolves a break/continue target. needLoop excludes
// switch/select frames (continue only binds to loops).
func (b *builder) frame(label *ast.Ident, needLoop bool) *loopFrame {
	for i := len(b.loops) - 1; i >= 0; i-- {
		f := &b.loops[i]
		if needLoop && f.continueTo == nil {
			continue
		}
		if label == nil || f.label == label.Name {
			return f
		}
	}
	return nil
}

// isPanicCall reports whether e is a direct call to the panic builtin.
func isPanicCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}

// prune drops blocks unreachable from Entry (empty artifacts of
// returns and breaks) and renumbers the survivors in reverse postorder
// from Entry with Exit forced last. In RPO every forward edge of a
// reducible graph runs low index -> high index, so a higher-numbered
// predecessor identifies a genuine back edge — what Block.LoopHead and
// the dataflow worklist's widening heuristic rely on. Exit is always
// kept.
func (b *builder) prune() {
	g := b.g
	reach := make(map[*Block]bool, len(g.Blocks))
	var postorder []*Block
	var visit func(*Block)
	visit = func(blk *Block) {
		if reach[blk] {
			return
		}
		reach[blk] = true
		for _, e := range blk.Succs {
			visit(e.To)
		}
		if blk != g.Exit {
			postorder = append(postorder, blk)
		}
	}
	visit(g.Entry)
	reach[g.Exit] = true
	order := make([]*Block, 0, len(postorder)+1)
	for i := len(postorder) - 1; i >= 0; i-- {
		order = append(order, postorder[i])
	}
	order = append(order, g.Exit)
	for i, blk := range order {
		var preds []*Edge
		for _, e := range blk.Preds {
			if reach[e.From] {
				preds = append(preds, e)
			}
		}
		blk.Preds = preds
		blk.Index = i
	}
	g.Blocks = order
}

// LoopHead reports whether blk has a back edge: a predecessor that
// appears later in the block ordering. Dataflow clients widen at loop
// heads to guarantee termination.
func (blk *Block) LoopHead() bool {
	for _, e := range blk.Preds {
		if e.From.Index >= blk.Index {
			return true
		}
	}
	return false
}

// String renders the graph for debugging and tests.
func (g *Graph) String() string {
	var sb strings.Builder
	for _, blk := range g.Blocks {
		tag := ""
		if blk == g.Entry {
			tag = " (entry)"
		}
		if blk == g.Exit {
			tag = " (exit)"
		}
		fmt.Fprintf(&sb, "b%d%s: %d node(s) ->", blk.Index, tag, len(blk.Nodes))
		for _, e := range blk.Succs {
			if e.Cond != nil {
				neg := ""
				if e.Negated {
					neg = "!"
				}
				fmt.Fprintf(&sb, " %scond:b%d", neg, e.To.Index)
			} else {
				fmt.Fprintf(&sb, " b%d", e.To.Index)
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
