package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// parseFunc returns the body of the first function in src.
func parseFunc(t *testing.T, src string) *ast.BlockStmt {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "x.go", "package p\n"+src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			return fd.Body
		}
	}
	t.Fatal("no function in source")
	return nil
}

// reaches reports whether to is reachable from from along Succs.
func reaches(from, to *Block) bool {
	seen := make(map[*Block]bool)
	var walk func(*Block) bool
	walk = func(b *Block) bool {
		if b == to {
			return true
		}
		if seen[b] {
			return false
		}
		seen[b] = true
		for _, e := range b.Succs {
			if walk(e.To) {
				return true
			}
		}
		return false
	}
	return walk(from)
}

func TestStraightLine(t *testing.T) {
	g := Build(parseFunc(t, `func f() { x := 1; y := x; _ = y }`))
	if len(g.Entry.Nodes) != 3 {
		t.Fatalf("entry holds %d nodes, want 3\n%s", len(g.Entry.Nodes), g)
	}
	if !reaches(g.Entry, g.Exit) {
		t.Fatalf("exit unreachable:\n%s", g)
	}
}

func TestIfElseBranchEdges(t *testing.T) {
	g := Build(parseFunc(t, `func f(a int) int {
		if a > 0 {
			a = 1
		} else {
			a = 2
		}
		return a
	}`))
	// The entry block ends in the condition with one true and one
	// false edge carrying it.
	var cond, neg int
	for _, e := range g.Entry.Succs {
		if e.Cond == nil {
			t.Fatalf("if dispatch has unconditional successor:\n%s", g)
		}
		cond++
		if e.Negated {
			neg++
		}
	}
	if cond != 2 || neg != 1 {
		t.Fatalf("dispatch edges = %d (%d negated), want 2 (1)\n%s", cond, neg, g)
	}
}

func TestIfWithoutElseFallsThrough(t *testing.T) {
	g := Build(parseFunc(t, `func f(a int) {
		if a > 0 {
			return
		}
		a++
	}`))
	// The then-branch returns: its block must have Exit as successor,
	// and the fall-through path must still reach Exit via the a++ block.
	if !reaches(g.Entry, g.Exit) {
		t.Fatalf("exit unreachable:\n%s", g)
	}
	foundNegated := false
	for _, e := range g.Entry.Succs {
		if e.Cond != nil && e.Negated {
			foundNegated = true
			if reaches(e.To, g.Exit) == false {
				t.Fatalf("false edge does not reach exit:\n%s", g)
			}
		}
	}
	if !foundNegated {
		t.Fatalf("no negated fall-through edge:\n%s", g)
	}
}

func TestForLoopBackEdge(t *testing.T) {
	g := Build(parseFunc(t, `func f() {
		s := 0
		for i := 0; i < 10; i++ {
			s += i
		}
		_ = s
	}`))
	heads := 0
	for _, blk := range g.Blocks {
		if blk.LoopHead() {
			heads++
		}
	}
	if heads != 1 {
		t.Fatalf("loop heads = %d, want 1\n%s", heads, g)
	}
	if !reaches(g.Entry, g.Exit) {
		t.Fatalf("exit unreachable:\n%s", g)
	}
}

func TestRangeHeaderShallow(t *testing.T) {
	g := Build(parseFunc(t, `func f(xs []int) int {
		s := 0
		for _, x := range xs {
			s += x
		}
		return s
	}`))
	var hdr *RangeHeader
	for _, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			if rh, ok := n.(*RangeHeader); ok {
				hdr = rh
			}
			// The body statement s += x must not appear inside any other
			// node: blocks hold compound loops only via RangeHeader.
			if _, ok := n.(*ast.RangeStmt); ok {
				t.Fatalf("raw RangeStmt in node list:\n%s", g)
			}
		}
	}
	if hdr == nil {
		t.Fatalf("no RangeHeader recorded:\n%s", g)
	}
	if hdr.End() != hdr.Range.X.End() {
		t.Fatal("RangeHeader.End should stop at the ranged expression")
	}
	heads := 0
	for _, blk := range g.Blocks {
		if blk.LoopHead() {
			heads++
		}
	}
	if heads != 1 {
		t.Fatalf("loop heads = %d, want 1\n%s", heads, g)
	}
}

func TestBreakContinue(t *testing.T) {
	g := Build(parseFunc(t, `func f(xs []int) int {
		s := 0
		for _, x := range xs {
			if x < 0 {
				continue
			}
			if x > 100 {
				break
			}
			s += x
		}
		return s
	}`))
	if !reaches(g.Entry, g.Exit) {
		t.Fatalf("exit unreachable:\n%s", g)
	}
}

func TestLabeledBreak(t *testing.T) {
	g := Build(parseFunc(t, `func f() int {
		s := 0
	outer:
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				if i*j > 2 {
					break outer
				}
				s++
			}
		}
		return s
	}`))
	if !reaches(g.Entry, g.Exit) {
		t.Fatalf("exit unreachable:\n%s", g)
	}
}

func TestSwitchWithAndWithoutDefault(t *testing.T) {
	withDefault := Build(parseFunc(t, `func f(a int) int {
		switch a {
		case 1:
			return 1
		default:
			return 2
		}
	}`))
	// Every path returns: after-block should have been pruned or be
	// unreachable; Exit reachable.
	if !reaches(withDefault.Entry, withDefault.Exit) {
		t.Fatalf("exit unreachable:\n%s", withDefault)
	}

	noDefault := Build(parseFunc(t, `func f(a int) int {
		switch a {
		case 1:
			return 1
		}
		return 0
	}`))
	if !reaches(noDefault.Entry, noDefault.Exit) {
		t.Fatalf("exit unreachable:\n%s", noDefault)
	}
}

func TestFallthrough(t *testing.T) {
	g := Build(parseFunc(t, `func f(a int) int {
		r := 0
		switch a {
		case 1:
			r = 1
			fallthrough
		case 2:
			r += 2
		}
		return r
	}`))
	if !reaches(g.Entry, g.Exit) {
		t.Fatalf("exit unreachable:\n%s", g)
	}
	// The case-1 body must reach the case-2 body without passing the
	// dispatch again: find the block containing "r = 1" and check a
	// successor chain hits "r += 2" before after.
	var b1, b2 *Block
	for _, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			if as, ok := n.(*ast.AssignStmt); ok {
				switch as.Tok {
				case token.ASSIGN:
					b1 = blk
				case token.ADD_ASSIGN:
					b2 = blk
				}
			}
		}
	}
	if b1 == nil || b2 == nil {
		t.Fatalf("case bodies not found:\n%s", g)
	}
	if !reaches(b1, b2) {
		t.Fatalf("fallthrough edge missing from case 1 to case 2:\n%s", g)
	}
}

func TestReturnAndPanicEdges(t *testing.T) {
	g := Build(parseFunc(t, `func f(a int) int {
		if a < 0 {
			panic("negative")
		}
		return a
	}`))
	if !reaches(g.Entry, g.Exit) {
		t.Fatalf("exit unreachable:\n%s", g)
	}
	// The panic block's only successor is Exit.
	for _, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			es, ok := n.(*ast.ExprStmt)
			if !ok || !isPanicCall(es.X) {
				continue
			}
			if len(blk.Succs) != 1 || blk.Succs[0].To != g.Exit {
				t.Fatalf("panic block does not jump to exit:\n%s", g)
			}
		}
	}
}

func TestDefersRecorded(t *testing.T) {
	g := Build(parseFunc(t, `func f() {
		defer println("a")
		if true {
			defer println("b")
		}
	}`))
	if len(g.Defers) != 2 {
		t.Fatalf("defers = %d, want 2", len(g.Defers))
	}
}

func TestSelect(t *testing.T) {
	g := Build(parseFunc(t, `func f(a, b chan int) int {
		select {
		case v := <-a:
			return v
		case <-b:
			return 0
		}
	}`))
	if !reaches(g.Entry, g.Exit) {
		t.Fatalf("exit unreachable:\n%s", g)
	}
}

func TestNilBody(t *testing.T) {
	g := Build(nil)
	if !reaches(g.Entry, g.Exit) {
		t.Fatal("nil body: exit unreachable")
	}
}

func TestInfiniteLoopPrunesAfter(t *testing.T) {
	g := Build(parseFunc(t, `func f() {
		for {
			_ = 1
		}
	}`))
	// Nothing after the loop: Exit is kept but has no predecessors.
	if len(g.Exit.Preds) != 0 {
		t.Fatalf("infinite loop should leave exit predecessor-free:\n%s", g)
	}
}
