// Package ctxguard enforces context lifetime discipline in the
// serving path. A context.Context carries the request's deadline and
// cancellation; the serving guideline it encodes — steal cycles only
// while the owner is absent — only works if cancellation actually
// propagates. Three bug shapes defeat it:
//
//   - a ctx stored in a struct field outlives the request that created
//     it: whoever reads the field later observes a deadline from a
//     finished request (or pins its values alive)
//   - a goroutine that captures the handler's ctx without a join
//     barrier keeps running after the handler returns, exactly the
//     runaway background work the pool/singleflight machinery exists
//     to prevent
//   - a context.WithCancel/WithTimeout/WithDeadline whose cancel
//     function is not called on every exit path leaks the context's
//     timer and child registration until the parent itself dies
//
// The cancel check is path-sensitive: it runs a may-analysis over the
// function's CFG (internal/analysis/cfg + dataflow) where the state is
// the set of cancel functions still pending, joined by union, so a
// cancel called on the happy path but skipped by an early return is
// still reported. Any other use of the cancel variable — deferring it,
// returning it, passing it along, storing it — counts as an escape and
// silences the check (the responsibility moved, soundly, to someone
// the analysis cannot see). The goroutine check consults the flow
// engine's barrier positions, so spawns joined by a WaitGroup.Wait or
// channel receive before the function returns stay silent.
package ctxguard

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/analysis/cfg"
	"repro/internal/analysis/dataflow"
	"repro/internal/analysis/flow"
)

var Analyzer = &analysis.Analyzer{
	Name: "ctxguard",
	Doc:  "flag stored contexts, goroutines outliving their handler, and cancel functions skipped on some exit path",
	Run:  run,
}

// guarded names the serving-path packages.
var guarded = map[string]bool{
	"serve":   true,
	"obs":     true,
	"csserve": true,
}

func run(pass *analysis.Pass) error {
	// Build flow info (and export its facts) unconditionally, as every
	// flow-based analyzer does, so import order cannot matter.
	fl, err := flow.Of(pass)
	if err != nil {
		return err
	}
	if !guarded[analysis.PkgBase(pass.Pkg.Path())] {
		return nil
	}
	for _, f := range pass.Files {
		checkStructFields(pass, f)
	}
	for _, fi := range fl.Funcs {
		if fi.Decl.Body == nil {
			continue
		}
		checkLostCancel(pass, fi.Decl)
		checkSpawns(pass, fi)
	}
	return nil
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	n, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// checkStructFields flags context.Context struct fields: a stored ctx
// outlives the call that created it.
func checkStructFields(pass *analysis.Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		st, ok := n.(*ast.StructType)
		if !ok || st.Fields == nil {
			return true
		}
		for _, field := range st.Fields.List {
			t := pass.TypesInfo.TypeOf(field.Type)
			if t == nil || !isContextType(t) {
				continue
			}
			name := "embedded field"
			if len(field.Names) > 0 {
				name = "field " + field.Names[0].Name
			}
			pass.ReportRangef(field, "context stored in struct %s outlives the request that created it; pass ctx as a call argument instead", name)
		}
		return true
	})
}

// withCancelCallee returns the name of the context constructor called,
// or "" when call is not context.WithCancel/WithTimeout/WithDeadline.
func withCancelCallee(pass *analysis.Pass, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return ""
	}
	switch fn.Name() {
	case "WithCancel", "WithTimeout", "WithDeadline":
		return fn.Name()
	}
	return ""
}

// A cancelSite is one `ctx, cancel := context.WithX(...)` binding.
type cancelSite struct {
	v      *types.Var // the cancel variable
	assign *ast.AssignStmt
	callee string
}

// pendingSet is the may-analysis state: cancel variables bound but not
// yet called (or escaped) on some path reaching this point.
type pendingSet map[*types.Var]*cancelSite

type pendingLattice struct{}

func (pendingLattice) Bottom() pendingSet { return nil }
func (pendingLattice) Join(a, b pendingSet) pendingSet {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	out := make(pendingSet, len(a)+len(b))
	for v, s := range a {
		out[v] = s
	}
	for v, s := range b {
		out[v] = s
	}
	return out
}
func (pendingLattice) Equal(a, b pendingSet) bool {
	if len(a) != len(b) {
		return false
	}
	for v := range a {
		if _, ok := b[v]; !ok {
			return false
		}
	}
	return true
}
func (pendingLattice) Widen(prev, next pendingSet) pendingSet { return next }

// checkLostCancel reports WithCancel/WithTimeout/WithDeadline whose
// cancel function can reach function exit without being called.
func checkLostCancel(pass *analysis.Pass, fd *ast.FuncDecl) {
	// Collect cancel bindings first; most functions have none.
	sites := make(map[*ast.AssignStmt]*cancelSite)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 2 || len(as.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := withCancelCallee(pass, call)
		if callee == "" {
			return true
		}
		id, ok := as.Lhs[1].(*ast.Ident)
		if !ok {
			return true
		}
		if id.Name == "_" {
			pass.ReportRangef(as, "the cancel function returned by context.%s is discarded: the context leaks until its parent is cancelled", callee)
			return true
		}
		v, _ := pass.TypesInfo.Defs[id].(*types.Var)
		if v == nil {
			v, _ = pass.TypesInfo.Uses[id].(*types.Var)
		}
		if v != nil {
			sites[as] = &cancelSite{v: v, assign: as, callee: callee}
		}
		return true
	})
	if len(sites) == 0 {
		return
	}
	vars := make(map[*types.Var]bool, len(sites))
	for _, s := range sites {
		vars[s.v] = true
	}

	g := cfg.Build(fd.Body)
	res, err := dataflow.Forward(g, dataflow.Problem[pendingSet]{
		Lattice: pendingLattice{},
		Entry:   pendingSet{},
		Transfer: func(b *cfg.Block, in pendingSet) pendingSet {
			out := pendingLattice{}.Join(nil, in) // reuse; copy lazily below
			copied := false
			ensure := func() {
				if !copied {
					cp := make(pendingSet, len(out))
					for v, s := range out {
						cp[v] = s
					}
					out, copied = cp, true
				}
			}
			// Any use of a cancel variable discharges it: a call
			// cancels, everything else (defer, return, argument,
			// store) escapes to an owner the analysis cannot see.
			scan := func(n ast.Node) {
				ast.Inspect(n, func(c ast.Node) bool {
					id, ok := c.(*ast.Ident)
					if !ok {
						return true
					}
					v, _ := pass.TypesInfo.Uses[id].(*types.Var)
					if v == nil || !vars[v] {
						return true
					}
					if _, pending := out[v]; pending {
						ensure()
						delete(out, v)
					}
					return true
				})
			}
			for _, n := range b.Nodes {
				// RangeHeader is the CFG's synthetic node; hand its real
				// subexpressions to ast.Inspect, never the wrapper.
				if rh, ok := n.(*cfg.RangeHeader); ok {
					if rh.Range.Key != nil {
						scan(rh.Range.Key)
					}
					if rh.Range.Value != nil {
						scan(rh.Range.Value)
					}
					scan(rh.Range.X)
					continue
				}
				scan(n)
				if as, ok := n.(*ast.AssignStmt); ok {
					if s := sites[as]; s != nil {
						ensure()
						out[s.v] = s
					}
				}
			}
			return out
		},
	})
	if err != nil {
		return
	}
	// Deterministic order: report in source order of the bindings.
	var leaked []*cancelSite
	for _, s := range res.In[g.Exit] {
		leaked = append(leaked, s)
	}
	sortSites(leaked)
	for _, s := range leaked {
		pass.ReportRangef(s.assign, "the cancel function from context.%s is not called on every path to return; defer it at the binding", s.callee)
	}
}

func sortSites(ss []*cancelSite) {
	for i := 1; i < len(ss); i++ {
		for j := i; j > 0 && ss[j].assign.Pos() < ss[j-1].assign.Pos(); j-- {
			ss[j], ss[j-1] = ss[j-1], ss[j]
		}
	}
}

// checkSpawns flags goroutines that capture a context-typed variable
// of the enclosing function with no synchronization barrier between
// the spawn and the function's end: the goroutine can outlive the
// handler whose deadline it inherited.
func checkSpawns(pass *analysis.Pass, fi *flow.FuncInfo) {
	for _, sp := range fi.Spawns {
		if fi.BarrierBetween(sp.Go.Pos(), fi.Decl.End()) {
			continue
		}
		if sp.Lit != nil {
			reportCapturedCtx(pass, fi, sp.Lit)
			continue
		}
		// go f(ctx): the context escapes into the spawned call directly.
		for _, arg := range sp.Go.Call.Args {
			t := pass.TypesInfo.TypeOf(arg)
			if t != nil && isContextType(t) {
				pass.ReportRangef(arg, "goroutine receives a context and is never joined before return: it can outlive the request; join it or hand it a context it owns")
				break
			}
		}
	}
}

func reportCapturedCtx(pass *analysis.Pass, fi *flow.FuncInfo, lit *ast.FuncLit) {
	done := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if done {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, _ := pass.TypesInfo.Uses[id].(*types.Var)
		if v == nil || v.IsField() || !isContextType(v.Type()) {
			return true
		}
		// Captured: declared in the enclosing function, before the
		// literal (parameters included).
		if v.Pos() < fi.Decl.Pos() || v.Pos() >= lit.Pos() {
			return true
		}
		pass.ReportRangef(id, "goroutine captures %s (context.Context) and is never joined before return: it can outlive the request; join it or hand it a context it owns", id.Name)
		done = true
		return false
	})
}
