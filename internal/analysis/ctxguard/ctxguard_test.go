package ctxguard_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/ctxguard"
)

func TestCtxGuard(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), ctxguard.Analyzer, "serve")
}
