// Fixture for the ctxguard analyzer, named serve so the guarded
// package gate applies.
package serve

import (
	"context"
	"sync"
	"time"
)

func use(context.Context) {}

// True positive: a context stored in a struct field outlives the
// request that created it.
type session struct {
	ctx context.Context // want `context stored in struct field ctx outlives the request`
	id  int
}

// True positive: the early return skips cancel.
func earlyReturn(parent context.Context, ready bool) context.Context {
	ctx, cancel := context.WithCancel(parent) // want `cancel function from context.WithCancel is not called on every path`
	if !ready {
		return ctx
	}
	cancel()
	return ctx
}

// True positive: the cancel function is discarded outright.
func discard(parent context.Context) context.Context {
	ctx, _ := context.WithTimeout(parent, time.Second) // want `cancel function returned by context.WithTimeout is discarded`
	return ctx
}

// True positive: the goroutine captures the handler's ctx and is
// never joined, so it can outlive the request.
func spawnLeak(ctx context.Context) {
	go func() {
		use(ctx) // want `goroutine captures ctx \(context.Context\) and is never joined`
	}()
}

// True positive: same leak through a direct spawn argument.
func spawnDirect(ctx context.Context) {
	go use(ctx) // want `goroutine receives a context and is never joined`
}

// Non-finding: the canonical defer-at-binding pattern.
func okDefer(parent context.Context) {
	ctx, cancel := context.WithTimeout(parent, time.Second)
	defer cancel()
	use(ctx)
}

// Non-finding: cancel called explicitly on every path.
func okAllPaths(parent context.Context, ready bool) {
	ctx, cancel := context.WithCancel(parent)
	if !ready {
		cancel()
		return
	}
	use(ctx)
	cancel()
}

// Non-finding: the cancel function escapes to the caller, which takes
// over the obligation.
func okEscapes(parent context.Context) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(parent)
	return ctx, cancel
}

// Non-finding: the goroutine is joined before the function returns,
// so it cannot outlive the request.
func okJoin(ctx context.Context) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		use(ctx)
	}()
	wg.Wait()
}

// Non-finding (regression): range loops put a synthetic RangeHeader in
// the CFG's node list, which once crashed the cancel-tracking walk; the
// deferred cancel must still discharge across the loop.
func okRange(parent context.Context, keys []string) {
	ctx, cancel := context.WithCancel(parent)
	defer cancel()
	for _, k := range keys {
		_ = k
		use(ctx)
	}
}

// Non-finding: a CancelFunc field is how owners keep the obligation;
// only stored contexts are flagged.
type flight struct {
	cancel context.CancelFunc
}

// Non-finding (suppressed): a bounded queue item carries the ctx that
// scopes the task it travels with.
type task struct {
	//lint:allow ctxguard bounded queue: the ctx scopes the queued task and dies with it
	ctx context.Context
	fn  func(context.Context)
}
