// Fixture for the probrange analyzer, named lifefn so the guarded
// package gate applies.
package lifefn

import "math"

// Mixture mirrors the simulator's weighted mixture of life functions.
type Mixture struct {
	W float64 //cs:unit probability
}

// blend is a probability-typed sink for argument checks.
//
//cs:unit p=probability
func blend(p float64) float64 { return p }

// True positive: the weighted sum of two probabilities reaches 1.5
// when the weights do not sum to one.
//
//cs:unit p=probability q=probability return=probability
func overWeighted(p, q float64) float64 {
	return 0.7*p + 0.8*q // want `value in \[0, 1\.5\] returned as a probability`
}

// True positive: a constant outside the unit interval stored into
// probability storage.
func setWeight(m *Mixture) {
	m.W = 1.5 // want `value in \[1\.5, 1\.5\] stored into probability-typed m\.W`
}

// True positive: shifting a probability before passing it to a
// probability parameter.
//
//cs:unit x=probability
func shifted(x float64) float64 {
	return blend(x + 0.5) // want `value in \[0\.5, 1\.5\] passed as the probability argument of blend`
}

// True positive: an unclamped weighted accumulation widens to +inf —
// the Mixture.P shape, where only sum-to-one weights keep it sound.
//
//cs:unit px=probability return=probability
func mixAll(ms []Mixture, px float64) float64 {
	s := 0.0
	for _, m := range ms {
		s += m.W * px
	}
	return s // want `value in \[0, \+inf\] returned as a probability`
}

// Non-finding: the complement of a probability stays in the interval.
//
//cs:unit p=probability return=probability
func complement(p float64) float64 {
	return 1 - p
}

// Non-finding: products of probabilities stay in the interval.
//
//cs:unit p=probability q=probability return=probability
func both(p, q float64) float64 {
	return p * q
}

// Non-finding: the standard clamp idiom bounds an unknown value.
//
//cs:unit return=probability
func clamped(x float64) float64 {
	return math.Max(0, math.Min(1, x))
}

// Non-finding: branch refinement proves the early-exit clamp.
//
//cs:unit return=probability
func refined(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// Non-finding: a fully unknown accumulation claims nothing, so the
// analyzer stays silent instead of guessing.
//
//cs:unit return=probability
func unknownSum(ws []float64) float64 {
	s := 0.0
	for _, w := range ws {
		s += w
	}
	return s
}

// Non-finding (suppressed): intentional overshoot the caller folds
// back into range.
//
//cs:unit p=probability return=probability
func allowOver(p float64) float64 {
	//lint:allow probrange overshoot folded back by the caller
	return p + 1
}
