// Package probrange proves that probability-typed values stay inside
// [0,1]. Life functions p(t), commit probabilities and mixture
// weights drive every expectation in the paper (eq. 2.1, system 3.6);
// a value that escapes the unit interval — an unclamped sum of
// weighted terms, an extrapolated interpolant, a ratio without a
// bounds check — silently corrupts E(S;p) instead of failing. The
// analyzer runs an interval abstract interpretation over each
// function's CFG (internal/analysis/cfg + dataflow, with widening at
// loop heads) and checks every site where a value flows into
// probability-typed storage: returns of functions whose //cs:unit
// result is probability, arguments to probability parameters,
// assignments to probability fields and composite literals.
//
// The domain is assume-guarantee: reads of probability-declared
// storage (fields, package variables, calls whose declared result is
// probability) are assumed in [0,1]; writes and escapes are checked.
// Branch conditions refine intervals along edges (`if p > 1` leaves
// [0,1] on the false edge), and math.Min/math.Max/math.Abs are
// modeled, so the standard clamp idioms come out clean.
//
// A site is flagged only when its interval both escapes [0,1] and has
// at least one finite bound: a fully unknown value ([-∞,∞], nothing
// claimed anywhere) stays silent, so diagnostics always trace back to
// a concrete constant, annotation or accumulation — the same
// both-ends-silent discipline as unitflow's dimension lattice.
package probrange

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"math"
	"strconv"

	"repro/internal/analysis"
	"repro/internal/analysis/cfg"
	"repro/internal/analysis/dataflow"
	"repro/internal/analysis/dim"
)

var Analyzer = &analysis.Analyzer{
	Name: "probrange",
	Doc:  "prove //cs:unit probability values stay in [0,1] through 1-p, products, mixtures and interpolation",
	Run:  run,
}

// guarded names the packages carrying probability math.
var guarded = map[string]bool{
	"lifefn":   true,
	"numeric":  true,
	"core":     true,
	"sched":    true,
	"nowsim":   true,
	"faultsim": true,
}

func run(pass *analysis.Pass) error {
	in, err := dim.Of(pass)
	if err != nil {
		return err
	}
	if !guarded[analysis.PkgBase(pass.Pkg.Path())] {
		return nil
	}
	for _, fd := range in.Funcs() {
		obj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
		if obj == nil {
			continue
		}
		a := &analyzer{pass: pass, dims: in, resultDims: in.FuncDimsOf(obj)}
		a.checkFunc(fd)
	}
	return nil
}

// An interval is a closed range over the extended reals.
type interval struct{ lo, hi float64 }

var top = interval{math.Inf(-1), math.Inf(1)}

func point(v float64) interval { return interval{v, v} }

func (iv interval) isTop() bool  { return math.IsInf(iv.lo, -1) && math.IsInf(iv.hi, 1) }
func (iv interval) inUnit() bool { return iv.lo >= 0 && iv.hi <= 1 }
func (iv interval) someFinite() bool {
	return !math.IsInf(iv.lo, -1) || !math.IsInf(iv.hi, 1)
}

func hull(a, b interval) interval {
	return interval{math.Min(a.lo, b.lo), math.Max(a.hi, b.hi)}
}

func add(a, b interval) interval { return interval{a.lo + b.lo, a.hi + b.hi} }
func sub(a, b interval) interval { return interval{a.lo - b.hi, a.hi - b.lo} }
func neg(a interval) interval    { return interval{-a.hi, -a.lo} }

// mulBound treats 0·∞ as 0: abstract values stand for finite reals,
// and the zero bound dominates.
func mulBound(a, b float64) float64 {
	if a == 0 || b == 0 {
		return 0
	}
	return a * b
}

func mul(a, b interval) interval {
	p1, p2 := mulBound(a.lo, b.lo), mulBound(a.lo, b.hi)
	p3, p4 := mulBound(a.hi, b.lo), mulBound(a.hi, b.hi)
	return interval{
		math.Min(math.Min(p1, p2), math.Min(p3, p4)),
		math.Max(math.Max(p1, p2), math.Max(p3, p4)),
	}
}

func div(a, b interval) interval {
	// A divisor straddling zero blows the quotient up to ⊤.
	if b.lo <= 0 && b.hi >= 0 {
		return top
	}
	p1, p2 := a.lo/b.lo, a.lo/b.hi
	p3, p4 := a.hi/b.lo, a.hi/b.hi
	return interval{
		math.Min(math.Min(p1, p2), math.Min(p3, p4)),
		math.Max(math.Max(p1, p2), math.Max(p3, p4)),
	}
}

// env maps tracked locals to their interval; ⊤ entries are removed,
// so nil-vs-empty and length comparisons stay meaningful.
type env map[*types.Var]interval

func cloneEnv(e env) env {
	out := make(env, len(e))
	for v, iv := range e {
		out[v] = iv
	}
	return out
}

type envLattice struct{}

func (envLattice) Bottom() env { return nil }
func (envLattice) Join(a, b env) env {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	out := make(env, len(a))
	// A variable missing on either side is ⊤ there, and ⊤ hulls to ⊤.
	for v, iv := range a {
		if jv, ok := b[v]; ok {
			h := hull(iv, jv)
			if !h.isTop() {
				out[v] = h
			}
		}
	}
	return out
}
func (envLattice) Equal(a, b env) bool {
	if len(a) != len(b) {
		return false
	}
	for v, iv := range a {
		if b[v] != iv {
			return false
		}
	}
	return true
}

// Widen jumps growing bounds to infinity so loop accumulations
// converge: an interval still growing after WidenAfter visits is
// unbounded for the analysis's purposes.
func (envLattice) Widen(prev, next env) env {
	out := make(env, len(next))
	for v, nv := range next {
		pv, ok := prev[v]
		if !ok {
			out[v] = nv
			continue
		}
		w := nv
		if nv.lo < pv.lo {
			w.lo = math.Inf(-1)
		}
		if nv.hi > pv.hi {
			w.hi = math.Inf(1)
		}
		if !w.isTop() {
			out[v] = w
		}
	}
	return out
}

// analyzer carries one function's checking state.
type analyzer struct {
	pass       *analysis.Pass
	dims       *dim.Info
	resultDims dim.FuncDims
}

func (a *analyzer) checkFunc(fd *ast.FuncDecl) {
	g := cfg.Build(fd.Body)
	res, err := dataflow.Forward(g, dataflow.Problem[env]{
		Lattice: envLattice{},
		Entry:   env{},
		Transfer: func(b *cfg.Block, in env) env {
			e := cloneEnv(in)
			for _, n := range b.Nodes {
				a.step(e, n)
			}
			return e
		},
		EdgeTransfer: func(edge *cfg.Edge, out env) env {
			if edge.Cond == nil {
				return out
			}
			return a.refine(out, edge.Cond, edge.Negated)
		},
	})
	if err != nil {
		return // no convergence: stay silent rather than guess
	}
	for _, b := range g.Blocks {
		e := cloneEnv(res.In[b])
		for _, n := range b.Nodes {
			a.checkNode(e, n)
			a.step(e, n)
		}
	}
}

// step advances the interval environment across one block node.
func (a *analyzer) step(e env, n ast.Node) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		a.stepAssign(e, n)
	case *ast.IncDecStmt:
		cur := a.lookupExpr(e, n.X)
		if n.Tok == token.INC {
			a.setVar(e, n.X, add(cur, point(1)))
		} else {
			a.setVar(e, n.X, sub(cur, point(1)))
		}
	case *ast.DeclStmt:
		gd, ok := n.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			if len(vs.Values) == len(vs.Names) {
				for i, name := range vs.Names {
					a.setVar(e, name, a.eval(e, vs.Values[i]))
				}
			} else if len(vs.Values) == 0 && isNumeric(a.pass.TypesInfo, vs.Type) {
				for _, name := range vs.Names {
					a.setVar(e, name, point(0)) // numeric zero value
				}
			} else {
				for _, name := range vs.Names {
					a.setVar(e, name, top)
				}
			}
		}
	case *cfg.RangeHeader:
		rs := n.Range
		if rs.Key != nil {
			a.setVar(e, rs.Key, top)
		}
		if rs.Value != nil {
			if a.dims.StorageDim(rs.X) == dim.Probability {
				a.setVar(e, rs.Value, interval{0, 1})
			} else {
				a.setVar(e, rs.Value, top)
			}
		}
	}
}

func isNumeric(info *types.Info, te ast.Expr) bool {
	if te == nil {
		return false
	}
	t := info.TypeOf(te)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsInteger) != 0
}

func (a *analyzer) stepAssign(e env, as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		for _, lhs := range as.Lhs {
			a.setVar(e, lhs, top)
		}
		return
	}
	for i, lhs := range as.Lhs {
		rhs := as.Rhs[i]
		var iv interval
		switch as.Tok {
		case token.ASSIGN, token.DEFINE:
			iv = a.eval(e, rhs)
		case token.ADD_ASSIGN:
			iv = add(a.lookupExpr(e, lhs), a.eval(e, rhs))
		case token.SUB_ASSIGN:
			iv = sub(a.lookupExpr(e, lhs), a.eval(e, rhs))
		case token.MUL_ASSIGN:
			iv = mul(a.lookupExpr(e, lhs), a.eval(e, rhs))
		case token.QUO_ASSIGN:
			iv = div(a.lookupExpr(e, lhs), a.eval(e, rhs))
		default:
			iv = top
		}
		a.setVar(e, lhs, iv)
	}
}

// lookupExpr is eval restricted to the current binding of a plain
// identifier, ⊤ otherwise (used for the LHS of op-assignments).
func (a *analyzer) lookupExpr(e env, x ast.Expr) interval {
	return a.eval(e, x)
}

func (a *analyzer) localVar(x ast.Expr) *types.Var {
	id, ok := ast.Unparen(x).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	var v *types.Var
	if d, ok := a.pass.TypesInfo.Defs[id].(*types.Var); ok {
		v = d
	} else if u, ok := a.pass.TypesInfo.Uses[id].(*types.Var); ok {
		v = u
	}
	if v == nil || v.IsField() {
		return nil
	}
	return v
}

func (a *analyzer) setVar(e env, x ast.Expr, iv interval) {
	v := a.localVar(x)
	if v == nil {
		return
	}
	if iv.isTop() {
		delete(e, v)
	} else {
		e[v] = iv
	}
}

// eval computes the abstract interval of an expression.
func (a *analyzer) eval(e env, x ast.Expr) interval {
	x = ast.Unparen(x)
	info := a.pass.TypesInfo
	// Any constant expression is a point.
	if tv, ok := info.Types[x]; ok && tv.Value != nil {
		if f, fok := constFloat(tv); fok {
			return point(f)
		}
	}
	switch x := x.(type) {
	case *ast.Ident:
		if v := a.localVar(x); v != nil {
			if iv, ok := e[v]; ok {
				return iv
			}
		}
		// Assume side: probability-declared storage holds [0,1].
		if a.dims.StorageDim(x) == dim.Probability {
			return interval{0, 1}
		}
		return top
	case *ast.SelectorExpr, *ast.IndexExpr:
		if a.dims.StorageDim(x) == dim.Probability {
			return interval{0, 1}
		}
		return top
	case *ast.CallExpr:
		return a.evalCall(e, x)
	case *ast.UnaryExpr:
		switch x.Op {
		case token.SUB:
			return neg(a.eval(e, x.X))
		case token.ADD:
			return a.eval(e, x.X)
		}
		return top
	case *ast.BinaryExpr:
		l, r := a.eval(e, x.X), a.eval(e, x.Y)
		switch x.Op {
		case token.ADD:
			return add(l, r)
		case token.SUB:
			return sub(l, r)
		case token.MUL:
			return mul(l, r)
		case token.QUO:
			return div(l, r)
		}
		return top
	case *ast.StarExpr:
		return a.eval(e, x.X)
	}
	return top
}

func constFloat(tv types.TypeAndValue) (float64, bool) {
	if tv.Value == nil {
		return 0, false
	}
	switch tv.Value.Kind() {
	case constant.Int, constant.Float:
		f, _ := constant.Float64Val(tv.Value)
		return f, true
	}
	return 0, false
}

func (a *analyzer) evalCall(e env, call *ast.CallExpr) interval {
	info := a.pass.TypesInfo
	// Conversions pass through.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		return a.eval(e, call.Args[0])
	}
	fn, _ := a.dims.Callee(call)
	if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "math" {
		switch fn.Name() {
		case "Min":
			if len(call.Args) == 2 {
				l, r := a.eval(e, call.Args[0]), a.eval(e, call.Args[1])
				return interval{math.Min(l.lo, r.lo), math.Min(l.hi, r.hi)}
			}
		case "Max":
			if len(call.Args) == 2 {
				l, r := a.eval(e, call.Args[0]), a.eval(e, call.Args[1])
				return interval{math.Max(l.lo, r.lo), math.Max(l.hi, r.hi)}
			}
		case "Abs":
			if len(call.Args) == 1 {
				iv := a.eval(e, call.Args[0])
				if iv.lo >= 0 {
					return iv
				}
				hi := math.Max(math.Abs(iv.lo), math.Abs(iv.hi))
				return interval{0, hi}
			}
		case "Exp":
			return interval{0, math.Inf(1)}
		}
		return top
	}
	if fn != nil && a.dims.FuncDimsOf(fn).Result(0) == dim.Probability {
		return interval{0, 1} // assume: a declared probability result
	}
	return top
}

// refine narrows env along a branch edge whose condition is cond
// (negated when the edge is the false branch).
func (a *analyzer) refine(e env, cond ast.Expr, negated bool) env {
	cond = ast.Unparen(cond)
	switch c := cond.(type) {
	case *ast.UnaryExpr:
		if c.Op == token.NOT {
			return a.refine(e, c.X, !negated)
		}
	case *ast.BinaryExpr:
		switch c.Op {
		case token.LAND:
			if !negated { // both conjuncts hold on the true edge
				return a.refine(a.refine(e, c.X, false), c.Y, false)
			}
		case token.LOR:
			if negated { // De Morgan: neither disjunct holds
				return a.refine(a.refine(e, c.X, true), c.Y, true)
			}
		case token.LSS, token.LEQ, token.GTR, token.GEQ:
			return a.refineCmp(e, c, negated)
		}
	}
	return e
}

func (a *analyzer) refineCmp(e env, c *ast.BinaryExpr, negated bool) env {
	op := c.Op
	if negated {
		switch op {
		case token.LSS:
			op = token.GEQ
		case token.LEQ:
			op = token.GTR
		case token.GTR:
			op = token.LEQ
		case token.GEQ:
			op = token.LSS
		}
	}
	x, y := c.X, c.Y
	// Reduce to x ≤ y (strict bounds cannot be tightened on floats, so
	// < refines like ≤).
	if op == token.GTR || op == token.GEQ {
		x, y = y, x
	}
	xv, yv := a.eval(e, x), a.eval(e, y)
	out, cloned := e, false
	ensure := func() {
		if !cloned {
			out, cloned = cloneEnv(e), true
		}
	}
	if v := a.localVar(x); v != nil && yv.hi < xv.hi {
		ensure()
		out[v] = interval{xv.lo, yv.hi}
	}
	if v := a.localVar(y); v != nil && xv.lo > yv.lo {
		ensure()
		out[v] = interval{math.Max(xv.lo, yv.lo), yv.hi}
	}
	return out
}

// checkNode reports probability escapes at the node's check sites.
func (a *analyzer) checkNode(e env, n ast.Node) {
	if rh, ok := n.(*cfg.RangeHeader); ok {
		n = rh.Range.X
	}
	ast.Inspect(n, func(child ast.Node) bool {
		switch c := child.(type) {
		case *ast.ReturnStmt:
			for i, r := range c.Results {
				if a.resultDims.Result(i) == dim.Probability {
					a.checkValue(e, r, "returned as a probability")
				}
			}
		case *ast.CallExpr:
			a.checkCallArgs(e, c)
		case *ast.AssignStmt:
			if len(c.Lhs) != len(c.Rhs) {
				return true
			}
			for i, lhs := range c.Lhs {
				if c.Tok != token.ASSIGN && c.Tok != token.DEFINE {
					continue
				}
				if a.dims.StorageDim(lhs) == dim.Probability {
					a.checkValue(e, c.Rhs[i], "stored into probability-typed "+storageName(lhs))
				}
			}
		case *ast.CompositeLit:
			a.checkComposite(e, c)
		}
		return true
	})
}

func (a *analyzer) checkCallArgs(e env, call *ast.CallExpr) {
	fn, method := a.dims.Callee(call)
	if fn == nil {
		return
	}
	fdims := a.dims.FuncDimsOf(fn)
	if len(fdims.Params) == 0 {
		return
	}
	base := 0
	if method {
		base = 1
	}
	for i, arg := range call.Args {
		if fdims.Param(base+i) == dim.Probability {
			a.checkValue(e, arg, "passed as the probability argument of "+fn.Name())
		}
	}
}

func (a *analyzer) checkComposite(e env, lit *ast.CompositeLit) {
	t := a.pass.TypesInfo.TypeOf(lit)
	if t == nil {
		return
	}
	named := dim.NamedOf(t)
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return
	}
	for i, elt := range lit.Elts {
		var fv *types.Var
		val := elt
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			key, kok := kv.Key.(*ast.Ident)
			if !kok {
				continue
			}
			fv, _ = a.pass.TypesInfo.Uses[key].(*types.Var)
			val = kv.Value
		} else if i < st.NumFields() {
			fv = st.Field(i)
		}
		if fv == nil {
			continue
		}
		if a.dims.FieldDim(fv, named) == dim.Probability {
			a.checkValue(e, val, "stored into probability field "+fv.Name())
		}
	}
}

func (a *analyzer) checkValue(e env, x ast.Expr, sink string) {
	iv := a.eval(e, x)
	if iv.inUnit() || !iv.someFinite() {
		return
	}
	a.pass.ReportRangef(x, "probability out of range: value in [%s, %s] %s can escape [0,1]; clamp it first",
		fmtBound(iv.lo), fmtBound(iv.hi), sink)
}

func fmtBound(v float64) string {
	switch {
	case math.IsInf(v, -1):
		return "-inf"
	case math.IsInf(v, 1):
		return "+inf"
	}
	return strconv.FormatFloat(v, 'g', 4, 64)
}

func storageName(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return storageName(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return storageName(e.X) + "[...]"
	}
	return "storage"
}
