package probrange_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/probrange"
)

func TestProbRange(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), probrange.Analyzer, "lifefn")
}
