// Package obs mimics the sink implementation package, which is exempt:
// it owns the sink plumbing, so field emission here is a non-finding.
package obs

type Event struct{}

type Sink interface{ Emit(Event) }

type Multi struct{ Sink Sink }

func (m Multi) Emit(e Event) { m.Sink.Emit(e) }
