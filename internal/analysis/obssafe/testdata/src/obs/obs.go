// Package obs mimics the sink implementation package, which is exempt:
// it owns the sink plumbing and the span bookkeeping fields, so field
// emission and raw span records here are non-findings.
package obs

type Event struct {
	Kind   string
	Phase  string
	Span   uint64
	Parent uint64
}

type Sink interface{ Emit(Event) }

type Multi struct{ Sink Sink }

func (m Multi) Emit(e Event) { m.Sink.Emit(e) }

// begin is the kind of raw span construction only obs packages may do.
func begin(id uint64) Event {
	e := Event{Phase: "B", Span: id}
	e.Parent = id - 1
	return e
}
