package obsdata

type Event struct{ Kind string }

type Sink interface{ Emit(Event) }

type Registry struct{}

func (*Registry) Counter(name string) int { return 0 }

type Obs struct {
	Sink    Sink
	Metrics *Registry
}

func bad(o Obs, e Event) {
	o.Sink.Emit(e)         // want "Sink.Emit called through the Sink field"
	o.Metrics.Counter("x") // want "Metrics.Counter called through the Metrics field"
}

func sanctioned(o Obs, e Event) {
	if o.Sink != nil {
		//lint:allow obssafe wrapper layer owns the nil check
		o.Sink.Emit(e)
	}
}

func local(o Obs, e Event) {
	s := o.Sink
	if s != nil {
		s.Emit(e) // nil-checked local: non-finding
	}
}

func pass(o Obs, f func(Sink)) {
	f(o.Sink) // field passed as a value, not called through: non-finding
}
