package obsdata

import "obs"

type Event struct {
	Kind   string
	Phase  string
	Span   uint64
	Parent uint64
}

type Sink interface{ Emit(Event) }

type Registry struct{}

func (*Registry) Counter(name string) int { return 0 }

type Obs struct {
	Sink    Sink
	Metrics *Registry
}

func bad(o Obs, e Event) {
	o.Sink.Emit(e)         // want "Sink.Emit called through the Sink field"
	o.Metrics.Counter("x") // want "Metrics.Counter called through the Metrics field"
}

func sanctioned(o Obs, e Event) {
	if o.Sink != nil {
		//lint:allow obssafe wrapper layer owns the nil check
		o.Sink.Emit(e)
	}
}

func local(o Obs, e Event) {
	s := o.Sink
	if s != nil {
		s.Emit(e) // nil-checked local: non-finding
	}
}

func pass(o Obs, f func(Sink)) {
	f(o.Sink) // field passed as a value, not called through: non-finding
}

func rawSpans(s obs.Sink) {
	s.Emit(obs.Event{Phase: "B", Span: 3}) // want "sets span field Phase" "sets span field Span"
	e := obs.Event{Kind: "commit"}
	e.Parent = 3 // want "assignment to Event.Parent bypasses the Spanner API"
	s.Emit(e)
}

func localEventOK(s obs.Sink) {
	// Span-free literals and assignments to ordinary fields are fine.
	e := obs.Event{Kind: "dispatch"}
	e.Kind = "commit"
	s.Emit(e)
}

func lookalike() Event {
	// A local type also named Event is not the obs Event: non-finding.
	e := Event{Phase: "B", Span: 1}
	e.Parent = 2
	return e
}

func sanctionedSpan(s obs.Sink, e obs.Event) {
	//lint:allow obssafe trace fixture builds raw span records on purpose
	s.Emit(obs.Event{Phase: "E", Span: 3})
}
