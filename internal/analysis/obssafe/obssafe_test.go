package obssafe_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/obssafe"
)

func TestObssafe(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), obssafe.Analyzer, "obsdata", "obs")
}
