// Package obssafe preserves the zero-cost-when-nil observability
// contract: instrumentation fields (Sink, Metrics) are nil when
// disabled, and the nil check is owned by the wrapper layer
// (nowsim.Obs's emit closures, farmObs methods), not scattered over
// emission sites.
//
// The analyzer flags any method call made directly through a struct
// field named Sink or Metrics — `o.Sink.Emit(e)`,
// `o.Metrics.Counter(...)` — outside packages named obs (the sink
// implementations themselves). Such calls either panic when the field
// is nil or force the caller to repeat the nil guard the wrapper
// already centralizes. Emission through a locally bound, checked value
// (`s := o.Sink; if s != nil { s.Emit(e) }`) or through the wrappers is
// fine. The wrapper layer's own field emissions carry //lint:allow
// obssafe annotations, which keeps the sanctioned sites enumerable.
//
// The analyzer also guards the span contract: the Phase, Span and
// Parent fields of an obs Event are owned by the Spanner/Span API
// (Start/Child/End allocate IDs, Span.Attach attributes point events).
// Hand-rolled span records — composite literals or assignments that set
// those fields outside obs packages — would bypass ID allocation and
// break begin/end pairing in rendered traces, so they are findings.
package obssafe

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "obssafe",
	Doc:  "require event/metric emission to go through the nil-safe Obs wrappers, not raw Sink/Metrics fields or hand-rolled span records",
	Run:  run,
}

// spanFields are the Event fields owned by the Spanner/Span API.
var spanFields = map[string]bool{"Phase": true, "Span": true, "Parent": true}

func run(pass *analysis.Pass) error {
	if analysis.PkgBase(pass.Pkg.Path()) == "obs" {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkFieldCall(pass, n)
			case *ast.CompositeLit:
				checkSpanLiteral(pass, n)
			case *ast.AssignStmt:
				checkSpanAssign(pass, n)
			}
			return true
		})
	}
	return nil
}

func checkFieldCall(pass *analysis.Pass, call *ast.CallExpr) {
	method, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	field, ok := ast.Unparen(method.X).(*ast.SelectorExpr)
	if !ok {
		return
	}
	name := field.Sel.Name
	if name != "Sink" && name != "Metrics" {
		return
	}
	sel, ok := pass.TypesInfo.Selections[field]
	if !ok || sel.Kind() != types.FieldVal {
		return
	}
	pass.ReportRangef(call, "%s.%s called through the %s field bypasses the nil-safe Obs wrapper; emit via the wrapper or a nil-checked local", name, method.Sel.Name, name)
}

// isObsEvent reports whether t (after pointer stripping) is a named
// struct type Event declared in a package whose base name is obs.
func isObsEvent(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != "Event" || obj.Pkg() == nil {
		return false
	}
	return analysis.PkgBase(obj.Pkg().Path()) == "obs"
}

// checkSpanLiteral flags obs Event composite literals that set span
// bookkeeping keys by hand instead of going through the Spanner API.
func checkSpanLiteral(pass *analysis.Pass, lit *ast.CompositeLit) {
	tv, ok := pass.TypesInfo.Types[lit]
	if !ok || !isObsEvent(tv.Type) {
		return
	}
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok || !spanFields[key.Name] {
			continue
		}
		pass.ReportRangef(kv, "Event literal sets span field %s by hand; span records must come from Spanner.Start/Span.Child/Span.End, and point events attach via Span.Attach", key.Name)
	}
}

// checkSpanAssign flags assignments to span fields of an obs Event.
func checkSpanAssign(pass *analysis.Pass, as *ast.AssignStmt) {
	for _, lhs := range as.Lhs {
		sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
		if !ok || !spanFields[sel.Sel.Name] {
			continue
		}
		tv, ok := pass.TypesInfo.Types[sel.X]
		if !ok || !isObsEvent(tv.Type) {
			continue
		}
		pass.ReportRangef(lhs, "assignment to Event.%s bypasses the Spanner API; span records must come from Spanner.Start/Span.Child/Span.End, and point events attach via Span.Attach", sel.Sel.Name)
	}
}
