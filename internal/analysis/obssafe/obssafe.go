// Package obssafe preserves the zero-cost-when-nil observability
// contract: instrumentation fields (Sink, Metrics) are nil when
// disabled, and the nil check is owned by the wrapper layer
// (nowsim.Obs's emit closures, farmObs methods), not scattered over
// emission sites.
//
// The analyzer flags any method call made directly through a struct
// field named Sink or Metrics — `o.Sink.Emit(e)`,
// `o.Metrics.Counter(...)` — outside packages named obs (the sink
// implementations themselves). Such calls either panic when the field
// is nil or force the caller to repeat the nil guard the wrapper
// already centralizes. Emission through a locally bound, checked value
// (`s := o.Sink; if s != nil { s.Emit(e) }`) or through the wrappers is
// fine. The wrapper layer's own field emissions carry //lint:allow
// obssafe annotations, which keeps the sanctioned sites enumerable.
package obssafe

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "obssafe",
	Doc:  "require event/metric emission to go through the nil-safe Obs wrappers, not raw Sink/Metrics fields",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if analysis.PkgBase(pass.Pkg.Path()) == "obs" {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			method, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			field, ok := ast.Unparen(method.X).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			name := field.Sel.Name
			if name != "Sink" && name != "Metrics" {
				return true
			}
			sel, ok := pass.TypesInfo.Selections[field]
			if !ok || sel.Kind() != types.FieldVal {
				return true
			}
			pass.Reportf(call.Pos(), "%s.%s called through the %s field bypasses the nil-safe Obs wrapper; emit via the wrapper or a nil-checked local", name, method.Sel.Name, name)
			return true
		})
	}
	return nil
}
