// Package callgraph builds a package-set call graph over the flow
// engine's per-function call sites, the reachability substrate under
// the hotalloc and lockorder analyzers. Nodes are functions named by
// types.Func.FullName (stable across the source loader and go vet's
// export-data loader); edges come in two flavors:
//
//   - static: the call site resolved to a concrete function or method
//     (flow.CallSite.Callee with a non-interface receiver);
//   - dynamic: the call site resolved to an interface method. The
//     abstract method is recorded as-is and resolved CHA-style at query
//     time: every named type visible in the analyzing package's import
//     closure whose method set satisfies the interface contributes its
//     implementation as a callee. Resolution happens in the importer —
//     which sees strictly more implementations than the defining
//     package did — so the graph sharpens as the package set grows.
//
// Per-package node lists ride the analysis.Session facts store under
// FactsNamespace (and therefore .vetx files under go vet -vettool),
// exactly like the flow engine's value-flow summaries, so reachability
// queries cross package boundaries: a //cs:hotpath root in serve can
// reach an allocation three packages down in sched.
//
// # Soundness caveats
//
// Calls through plain function values (fields, parameters, locals of
// function type) have no callee the engine can name and produce no
// edge — a hot path that launders a call through a stored func value
// escapes the walk. Function literals are the exception that keeps the
// common case sound: the flow engine attributes a literal's body to
// its enclosing declaration, so calls made inside closures are edges
// of the enclosing function regardless of where the closure ends up
// running. CHA is bounded by the import closure: implementations in
// packages the analyzing package never imports are invisible, the
// usual whole-program assumption scoped down to a package set.
package callgraph

import (
	"go/types"
	"sort"

	"repro/internal/analysis"
	"repro/internal/analysis/flow"
)

// FactsNamespace keys the call graph's packed node lists in an
// analysis.Session (and therefore in vetx facts files).
const FactsNamespace = "callgraph"

const sharedKey = "callgraph"

// A Node is the serialized view of one function: its resolved static
// callees, the abstract interface methods it calls, and its hot-root
// label when //cs:hotpath-annotated.
type Node struct {
	Callees []string `json:"callees,omitempty"`
	Dynamic []string `json:"dynamic,omitempty"`
	Hot     string   `json:"hot,omitempty"`
}

// Graph is the call-graph view from one analyzed package: full bodies
// for local functions, facts for imported ones, and the CHA universe
// of the package's import closure.
type Graph struct {
	Pkg   *types.Package
	Flow  *flow.Info
	Roots []Root
	// BadAnnots lists malformed //cs:hotpath annotations for the
	// hotalloc analyzer to report.
	BadAnnots []BadAnnot

	pass     *analysis.Pass
	local    map[string]*flow.FuncInfo
	nodes    Nodes            // local nodes, as exported
	imported map[string]Nodes // decoded facts per import path
	// world is the import-closure package list (analyzed package first),
	// the CHA universe; pkgByPath indexes it for abstract-name lookup.
	world     []*types.Package
	pkgByPath map[string]*types.Package
	// resolved caches CHA resolutions of abstract method full names.
	resolved map[string][]string
}

// Of returns the call graph for the pass's package, building it on
// first request and sharing it between analyzers of the same run.
// Building exports the package's node list as session facts for
// packages analyzed later.
func Of(pass *analysis.Pass) (*Graph, error) {
	v, err := pass.Shared(sharedKey, func() (interface{}, error) {
		return build(pass)
	})
	if err != nil {
		return nil, err
	}
	return v.(*Graph), nil
}

func build(pass *analysis.Pass) (*Graph, error) {
	fl, err := flow.Of(pass)
	if err != nil {
		return nil, err
	}
	g := &Graph{
		Pkg:       pass.Pkg,
		Flow:      fl,
		pass:      pass,
		local:     make(map[string]*flow.FuncInfo),
		nodes:     make(Nodes),
		imported:  make(map[string]Nodes),
		pkgByPath: make(map[string]*types.Package),
		resolved:  make(map[string][]string),
	}
	g.collectWorld(pass.Pkg)
	g.collectHotpath()
	hot := make(map[string]string, len(g.Roots))
	for _, r := range g.Roots {
		hot[r.Name] = r.Label
	}
	for _, fi := range fl.Funcs {
		name := fi.Obj.FullName()
		g.local[name] = fi
		node := Node{Hot: hot[name]}
		static := map[string]bool{}
		dynamic := map[string]bool{}
		for _, site := range fi.Calls {
			if site.Callee == nil {
				continue // builtin or function value: no edge
			}
			callee := origin(site.Callee)
			if abstractMethod(callee) {
				dynamic[callee.FullName()] = true
			} else {
				static[callee.FullName()] = true
			}
		}
		node.Callees = sortedKeys(static)
		node.Dynamic = sortedKeys(dynamic)
		g.nodes[name] = node
	}
	data, err := g.nodes.Encode()
	if err != nil {
		return nil, err
	}
	pass.ExportFacts(FactsNamespace, data)
	return g, nil
}

// collectWorld walks the import closure once, recording every package
// reachable from root. The closure is the CHA universe and the
// abstract-name resolution scope.
func (g *Graph) collectWorld(root *types.Package) {
	seen := make(map[*types.Package]bool)
	var walk func(p *types.Package)
	walk = func(p *types.Package) {
		if p == nil || seen[p] {
			return
		}
		seen[p] = true
		g.world = append(g.world, p)
		g.pkgByPath[p.Path()] = p
		for _, imp := range p.Imports() {
			walk(imp)
		}
	}
	walk(root)
}

func origin(fn *types.Func) *types.Func {
	if o := fn.Origin(); o != nil {
		return o
	}
	return fn
}

// abstractMethod reports whether fn is an interface method (a call to
// it dispatches dynamically).
func abstractMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return types.IsInterface(sig.Recv().Type())
}

// IsLocal reports whether name is declared (with a body) in the
// analyzed package.
func (g *Graph) IsLocal(name string) bool {
	_, ok := g.local[name]
	return ok
}

// FuncOf returns the flow view of a local function, nil for imported
// or unknown names.
func (g *Graph) FuncOf(name string) *flow.FuncInfo { return g.local[name] }

// NodeOf returns the node for name: the local node, or the imported
// facts node. ok is false when the function is outside the analyzed
// world (no body seen, no facts) — a leaf for reachability.
func (g *Graph) NodeOf(name string, pkgPath string) (Node, bool) {
	if n, ok := g.nodes[name]; ok {
		return n, true
	}
	if pkgPath == "" || pkgPath == g.Pkg.Path() {
		return Node{}, false
	}
	nodes, ok := g.imported[pkgPath]
	if !ok {
		var err error
		nodes, err = DecodeNodes(g.pass.Facts(pkgPath, FactsNamespace))
		if err != nil {
			nodes = Nodes{}
		}
		g.imported[pkgPath] = nodes
	}
	n, ok := nodes[name]
	return n, ok
}

// An OutEdge is one resolved call edge leaving a function.
type OutEdge struct {
	To string
	// Site is the call expression for edges out of local functions, nil
	// for edges recovered from imported facts.
	Site *flow.CallSite
	// Dynamic marks edges produced by CHA resolution of an interface
	// method call; To is then one of possibly several implementations.
	Dynamic bool
}

// Out returns the resolved outgoing edges of name, given the package
// path the name belongs to ("" for local). Dynamic calls are expanded
// to every implementation CHA finds in the import closure; the
// abstract method itself is not an edge. Order is deterministic.
func (g *Graph) Out(name, pkgPath string) []OutEdge {
	var edges []OutEdge
	if fi, ok := g.local[name]; ok {
		for _, site := range fi.Calls {
			if site.Callee == nil {
				continue
			}
			callee := origin(site.Callee)
			if abstractMethod(callee) {
				for _, impl := range g.resolve(callee.FullName()) {
					edges = append(edges, OutEdge{To: impl, Site: site, Dynamic: true})
				}
				continue
			}
			edges = append(edges, OutEdge{To: callee.FullName(), Site: site})
		}
		return edges
	}
	node, ok := g.NodeOf(name, pkgPath)
	if !ok {
		return nil
	}
	for _, c := range node.Callees {
		edges = append(edges, OutEdge{To: c})
	}
	for _, d := range node.Dynamic {
		for _, impl := range g.resolve(d) {
			edges = append(edges, OutEdge{To: impl, Dynamic: true})
		}
	}
	return edges
}

// PkgPathOf extracts the defining package path from a function full
// name: "path.Func", "(path.T).M" or "(*path.T).M". "" when the name
// carries no package (builtins).
func PkgPathOf(name string) string {
	s := name
	if len(s) > 0 && s[0] == '(' {
		if i := indexByte(s, ')'); i >= 0 {
			s = s[1:i]
		}
		if len(s) > 0 && s[0] == '*' {
			s = s[1:]
		}
	}
	// s is now "path.Type" or "path.Func": the path is everything up to
	// the last dot (import paths may contain dots in their domain part,
	// never after the final slash).
	if i := lastIndexByte(s, '.'); i >= 0 {
		return s[:i]
	}
	return ""
}

func indexByte(s string, c byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == c {
			return i
		}
	}
	return -1
}

func lastIndexByte(s string, c byte) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == c {
			return i
		}
	}
	return -1
}

// resolve performs the CHA query for an abstract interface method full
// name: the implementations among every named type of the import
// closure whose method set satisfies the method's interface.
func (g *Graph) resolve(abstract string) []string {
	if impls, ok := g.resolved[abstract]; ok {
		return impls
	}
	impls := g.resolveUncached(abstract)
	g.resolved[abstract] = impls
	return impls
}

func (g *Graph) resolveUncached(abstract string) []string {
	ifaceName, method, ok := splitAbstract(abstract)
	if !ok {
		return nil
	}
	path, typeName := PkgPathOf(ifaceName), baseName(ifaceName)
	pkg := g.pkgByPath[path]
	if pkg == nil {
		return nil
	}
	obj, _ := pkg.Scope().Lookup(typeName).(*types.TypeName)
	if obj == nil {
		return nil
	}
	iface, ok := obj.Type().Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	found := map[string]bool{}
	for _, p := range g.world {
		scope := p.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || types.IsInterface(named) {
				continue
			}
			var recv types.Type
			switch {
			case types.Implements(named, iface):
				recv = named
			case types.Implements(types.NewPointer(named), iface):
				recv = types.NewPointer(named)
			default:
				continue
			}
			fnObj, _, _ := types.LookupFieldOrMethod(recv, true, p, method)
			if fn, ok := fnObj.(*types.Func); ok {
				found[origin(fn).FullName()] = true
			}
		}
	}
	return sortedKeys(found)
}

// splitAbstract parses "(path.Iface).Method" into its interface name
// and method.
func splitAbstract(name string) (iface, method string, ok bool) {
	if len(name) == 0 || name[0] != '(' {
		return "", "", false
	}
	i := indexByte(name, ')')
	if i < 0 || i+2 > len(name) || name[i+1] != '.' {
		return "", "", false
	}
	return name[1:i], name[i+2:], true
}

func baseName(qualified string) string {
	if i := lastIndexByte(qualified, '.'); i >= 0 {
		return qualified[i+1:]
	}
	return qualified
}

// A Reach is the result of one reachability query: the BFS tree from a
// root, with parent edges for witness chains.
type Reach struct {
	Root string
	// Parent maps each reached function to the edge that first reached
	// it; the root maps to a zero edge with From "".
	Parent map[string]ReachEdge
	// Order lists reached functions in deterministic BFS order, root
	// first.
	Order []string
}

// A ReachEdge is one step of a witness chain.
type ReachEdge struct {
	From string
	// Site is the local call expression when From is a local function.
	Site *flow.CallSite
	// Gateway is the last local call site on the path from the root:
	// the place a diagnostic about this function can be reported in the
	// analyzed package.
	Gateway *flow.CallSite
	Dynamic bool
}

// ReachableFrom runs a breadth-first walk from root (a local function
// full name), following static edges and CHA-resolved dynamic edges,
// across package boundaries via facts. The walk is deterministic:
// neighbors are visited in sorted order.
func (g *Graph) ReachableFrom(root string) *Reach {
	r := &Reach{Root: root, Parent: map[string]ReachEdge{root: {}}}
	queue := []string{root}
	for len(queue) > 0 {
		name := queue[0]
		queue = queue[1:]
		r.Order = append(r.Order, name)
		parent := r.Parent[name]
		edges := g.Out(name, PkgPathOf(name))
		sort.SliceStable(edges, func(i, j int) bool { return edges[i].To < edges[j].To })
		for _, e := range edges {
			if _, seen := r.Parent[e.To]; seen {
				continue
			}
			gw := parent.Gateway
			if e.Site != nil {
				gw = e.Site
			}
			r.Parent[e.To] = ReachEdge{From: name, Site: e.Site, Gateway: gw, Dynamic: e.Dynamic}
			queue = append(queue, e.To)
		}
	}
	return r
}

// Chain renders the witness path from the query root to name:
// ["root", ..., "name"]. nil when name was not reached.
func (r *Reach) Chain(name string) []string {
	if _, ok := r.Parent[name]; !ok {
		return nil
	}
	var rev []string
	for cur := name; cur != ""; cur = r.Parent[cur].From {
		rev = append(rev, cur)
		if cur == r.Root {
			break
		}
	}
	out := make([]string, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		out = append(out, rev[i])
	}
	return out
}

func sortedKeys(m map[string]bool) []string {
	if len(m) == 0 {
		return nil
	}
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
