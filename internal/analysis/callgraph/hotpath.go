package callgraph

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// The //cs:hotpath grammar, the allocation-budget sibling of //cs:unit
// (internal/analysis/dim): a directive on a function declaration's doc
// comment marks the function as a hot-path root, the entry point of a
// region whose transitive callees the hotalloc analyzer holds to a
// zero-allocation budget.
//
//	//cs:hotpath
//	func (e *Engine) Step() bool
//
//	//cs:hotpath episode-loop
//	func RunEpisode(policy Policy, c float64, reclaim func(float64) float64) Result
//
// The payload is at most one label token — a name for the root in
// diagnostics ([A-Za-z0-9] then [A-Za-z0-9._/-]*); a bare directive
// labels the root with the function's own name. Anything else is
// malformed and reported, so a typo cannot silently unmark a root.

// A HotpathAnnot is one parsed //cs:hotpath annotation.
type HotpathAnnot struct {
	// Label names the root in diagnostics; "" means "use the function
	// name".
	Label string
}

// String renders the canonical directive text without the comment
// marker: "cs:hotpath" or "cs:hotpath label". Parsing the render of a
// parsed annotation yields the annotation back; the fuzz harness pins
// that round trip.
func (h HotpathAnnot) String() string {
	return analysis.Directive{Name: "hotpath", Payload: h.Label}.String()
}

// ParseHotpathDirective parses the payload of a cs:hotpath directive
// (the text after the selector).
func ParseHotpathDirective(payload string) (HotpathAnnot, error) {
	fields := splitSpace(payload)
	if len(fields) == 0 {
		return HotpathAnnot{}, nil
	}
	if len(fields) > 1 {
		return HotpathAnnot{}, fmt.Errorf("want at most one label, got %d tokens", len(fields))
	}
	label := fields[0]
	if !validLabel(label) {
		return HotpathAnnot{}, fmt.Errorf("bad label %q: want [A-Za-z0-9] then [A-Za-z0-9._/-]*", label)
	}
	return HotpathAnnot{Label: label}, nil
}

// splitSpace is strings.Fields restricted to the blanks the directive
// scanner itself treats as separators, so parse and render agree on
// what one token is.
func splitSpace(s string) []string {
	var out []string
	start := -1
	for i := 0; i <= len(s); i++ {
		if i < len(s) && s[i] != ' ' && s[i] != '\t' {
			if start < 0 {
				start = i
			}
			continue
		}
		if start >= 0 {
			out = append(out, s[start:i])
			start = -1
		}
	}
	return out
}

func validLabel(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case i > 0 && (c == '.' || c == '_' || c == '/' || c == '-'):
		default:
			return false
		}
	}
	return len(s) > 0
}

// A Root is one //cs:hotpath-annotated function declared in the
// analyzed package.
type Root struct {
	Name  string // types.Func full name
	Label string // diagnostic label (function name when unlabeled)
	Pos   token.Pos
}

// A BadAnnot is one malformed //cs:hotpath annotation; the hotalloc
// analyzer surfaces these so typos do not silently unmark a root.
type BadAnnot struct {
	Pos token.Pos
	Msg string
}

// collectHotpath scans the package's files for cs:hotpath directives:
// well-formed ones on function declarations become Roots, everything
// else (bad payloads, directives not attached to a function's doc)
// becomes a BadAnnot.
func (g *Graph) collectHotpath() {
	for _, file := range g.pass.Files {
		// Directives consumed by a function doc comment; any leftover
		// hotpath directive floats free and is malformed by position.
		used := make(map[*ast.Comment]bool)
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			d, c, ok := analysis.GroupDirective(fd.Doc, "hotpath")
			if !ok {
				continue
			}
			used[c] = true
			annot, err := ParseHotpathDirective(d.Payload)
			if err != nil {
				g.BadAnnots = append(g.BadAnnots, BadAnnot{c.Pos(), err.Error()})
				continue
			}
			obj, _ := g.pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			label := annot.Label
			if label == "" {
				label = fd.Name.Name
			}
			g.Roots = append(g.Roots, Root{Name: obj.FullName(), Label: label, Pos: c.Pos()})
		}
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if d, ok := analysis.CommentDirective(c); ok && d.Name == "hotpath" && !used[c] {
					g.BadAnnots = append(g.BadAnnots, BadAnnot{c.Pos(), "cs:hotpath must sit in a function declaration's doc comment"})
				}
			}
		}
	}
}
