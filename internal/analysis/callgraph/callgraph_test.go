package callgraph_test

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"reflect"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/callgraph"
)

// probe runs the call-graph builder over src (one file) inside a
// session and returns the resulting Graph.
func probe(t *testing.T, sess *analysis.Session, path, src string, imp types.Importer) (*callgraph.Graph, *types.Package) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, path+".go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(path, fset, []*ast.File{file}, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	var got *callgraph.Graph
	an := &analysis.Analyzer{
		Name: "probe",
		Doc:  "captures the call graph",
		Run: func(pass *analysis.Pass) error {
			g, err := callgraph.Of(pass)
			if err != nil {
				return err
			}
			got = g
			return nil
		},
	}
	if _, err := sess.Run(fset, []*ast.File{file}, pkg, info, []*analysis.Analyzer{an}); err != nil {
		t.Fatalf("run: %v", err)
	}
	if got == nil {
		t.Fatal("probe analyzer did not run")
	}
	return got, pkg
}

type importerFor struct {
	path string
	pkg  *types.Package
}

func (im importerFor) Import(path string) (*types.Package, error) {
	if path == im.path {
		return im.pkg, nil
	}
	return importer.Default().Import(path)
}

const shapeSrc = `package shape

// Sized is the dispatch seam the CHA test resolves through.
type Sized interface{ Size() int }

type Box struct{ n int }

func (b Box) Size() int { return b.n }

type Bag struct{ n int }

func (b *Bag) Size() int { return b.n }

//cs:hotpath measure-loop
func Measure(s Sized) int { return s.Size() }

func Direct() int { return Box{n: 1}.Size() }
`

func TestStaticAndDynamicEdges(t *testing.T) {
	g, _ := probe(t, analysis.NewSession(), "shape", shapeSrc, nil)

	out := g.Out("shape.Direct", "")
	if len(out) != 1 || out[0].To != "(shape.Box).Size" || out[0].Dynamic {
		t.Fatalf("Direct edges = %+v, want one static edge to (shape.Box).Size", out)
	}

	// Measure calls Sized.Size dynamically: CHA resolves both
	// implementations, value and pointer receiver.
	reach := g.ReachableFrom("shape.Measure")
	want := []string{"shape.Measure", "(*shape.Bag).Size", "(shape.Box).Size"}
	if !reflect.DeepEqual(reach.Order, want) {
		t.Errorf("Reachable(Measure) = %v, want %v", reach.Order, want)
	}
	if chain := reach.Chain("(*shape.Bag).Size"); len(chain) != 2 || chain[0] != "shape.Measure" {
		t.Errorf("Chain = %v, want [shape.Measure (*shape.Bag).Size]", chain)
	}
}

func TestHotpathRoots(t *testing.T) {
	g, _ := probe(t, analysis.NewSession(), "shape", shapeSrc, nil)
	if len(g.Roots) != 1 || g.Roots[0].Name != "shape.Measure" || g.Roots[0].Label != "measure-loop" {
		t.Fatalf("Roots = %+v, want shape.Measure labeled measure-loop", g.Roots)
	}
	if len(g.BadAnnots) != 0 {
		t.Fatalf("BadAnnots = %+v, want none", g.BadAnnots)
	}
}

func TestBadHotpathAnnots(t *testing.T) {
	g, _ := probe(t, analysis.NewSession(), "bad", `package bad

//cs:hotpath two tokens
func Rooted() {}

// A floating directive is malformed by position.
var x = 1 //cs:hotpath
`, nil)
	if len(g.Roots) != 0 {
		t.Fatalf("Roots = %+v, want none", g.Roots)
	}
	if len(g.BadAnnots) != 2 {
		t.Fatalf("BadAnnots = %+v, want 2", g.BadAnnots)
	}
}

func TestCrossPackageReachability(t *testing.T) {
	sess := analysis.NewSession()
	_, helperPkg := probe(t, sess, "cghelper", `package cghelper

func Leaf() int { return 1 }

func Mid() int { return Leaf() }
`, nil)

	g, _ := probe(t, sess, "cgroot", `package cgroot

import "cghelper"

//cs:hotpath
func Run() int { return cghelper.Mid() }
`, importerFor{"cghelper", helperPkg})

	reach := g.ReachableFrom("cgroot.Run")
	want := []string{"cgroot.Run", "cghelper.Mid", "cghelper.Leaf"}
	if !reflect.DeepEqual(reach.Order, want) {
		t.Errorf("cross-package reach = %v, want %v", reach.Order, want)
	}
	// The gateway of the imported leaf is the local call to Mid: the
	// only position in cgroot a diagnostic about Leaf can anchor to.
	edge := reach.Parent["cghelper.Leaf"]
	if edge.Gateway == nil || edge.Gateway.Callee == nil || edge.Gateway.Callee.FullName() != "cghelper.Mid" {
		t.Errorf("Leaf gateway = %+v, want the local call site of cghelper.Mid", edge)
	}

	// Without the session facts the imported function is a leaf.
	g2, _ := probe(t, analysis.NewSession(), "cgroot2", `package cgroot2

import "cghelper"

func Run() int { return cghelper.Mid() }
`, importerFor{"cghelper", helperPkg})
	reach2 := g2.ReachableFrom("cgroot2.Run")
	if len(reach2.Order) != 2 {
		t.Errorf("sessionless reach = %v, want the walk to stop at cghelper.Mid", reach2.Order)
	}
}

func TestPkgPathOf(t *testing.T) {
	cases := map[string]string{
		"repro/internal/sched.ExpectedWork":    "repro/internal/sched",
		"(repro/internal/nowsim.Policy).Next":  "repro/internal/nowsim",
		"(*repro/internal/nowsim.Engine).Step": "repro/internal/nowsim",
		"(example.com/v2/pkg.T).M":             "example.com/v2/pkg",
		"main.main":                            "main",
	}
	for name, want := range cases {
		if got := callgraph.PkgPathOf(name); got != want {
			t.Errorf("PkgPathOf(%q) = %q, want %q", name, got, want)
		}
	}
}

func TestNodesEncodeRoundTrip(t *testing.T) {
	n := callgraph.Nodes{
		"p.f": {Callees: []string{"p.g"}, Hot: "loop"},
		"p.g": {Dynamic: []string{"(p.I).M"}},
	}
	data, err := n.Encode()
	if err != nil {
		t.Fatal(err)
	}
	data2, _ := n.Encode()
	if string(data) != string(data2) {
		t.Error("Encode is not deterministic")
	}
	back, err := callgraph.DecodeNodes(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(n, back) {
		t.Errorf("round trip: got %+v, want %+v", back, n)
	}
}
