package callgraph

import (
	"encoding/json"
	"fmt"
	"sort"
)

// Nodes maps a function's full name to its serialized call-graph node,
// the per-package facts payload.
type Nodes map[string]Node

// Encode packs nodes into the facts blob stored in an
// analysis.Session and serialized into vetx files. The encoding is
// deterministic (sorted keys) so identical analyses produce identical
// facts bytes.
func (n Nodes) Encode() ([]byte, error) {
	names := make([]string, 0, len(n))
	for name := range n {
		names = append(names, name)
	}
	sort.Strings(names)
	type entry struct {
		Name string `json:"name"`
		Node Node   `json:"node"`
	}
	entries := make([]entry, 0, len(names))
	for _, name := range names {
		entries = append(entries, entry{name, n[name]})
	}
	return json.Marshal(entries)
}

// DecodeNodes unpacks a facts blob produced by Encode. A nil or empty
// blob yields an empty map.
func DecodeNodes(data []byte) (Nodes, error) {
	out := make(Nodes)
	if len(data) == 0 {
		return out, nil
	}
	var entries []struct {
		Name string `json:"name"`
		Node Node   `json:"node"`
	}
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("callgraph: decoding nodes: %v", err)
	}
	for _, e := range entries {
		out[e.Name] = e.Node
	}
	return out, nil
}
