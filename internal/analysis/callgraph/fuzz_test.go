package callgraph_test

import (
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/callgraph"
)

// FuzzParseHotpathDirective pins the //cs:hotpath grammar: parsing
// never panics, and an accepted payload round-trips through the
// canonical render — parse(render(parse(p))) is identical — so the
// annotation a gofmt'd file carries is exactly the annotation the
// analyzer saw.
func FuzzParseHotpathDirective(f *testing.F) {
	f.Add("")
	f.Add("episode-loop")
	f.Add("mc.trial/body_2")
	f.Add("two tokens")
	f.Add("-leading-dash")
	f.Add("label\twith\ttabs")
	f.Add("Ünïcode")
	f.Fuzz(func(t *testing.T, payload string) {
		annot, err := callgraph.ParseHotpathDirective(payload)
		if err != nil {
			return
		}
		text := "//" + annot.String()
		d, ok := analysis.ParseCSDirective(text)
		if !ok || d.Name != "hotpath" {
			t.Fatalf("canonical render %q does not rescan as a hotpath directive", text)
		}
		back, err := callgraph.ParseHotpathDirective(d.Payload)
		if err != nil {
			t.Fatalf("canonical payload %q rejected: %v", d.Payload, err)
		}
		if back != annot {
			t.Fatalf("round trip: %+v -> %q -> %+v", annot, text, back)
		}
		// An accepted label never smuggles in whitespace (which would
		// re-tokenize) or a '*' (which could close a /* */ comment).
		if strings.ContainsAny(annot.Label, " \t\n\r*") {
			t.Fatalf("accepted label %q contains scanner metacharacters", annot.Label)
		}
	})
}
