// Package floatcmp flags == and != on floating-point operands.
//
// The planner and landscape code compare expected work E(S; p)
// everywhere, and two mathematically equal schedules rarely produce
// bit-identical float64 values; exact comparison is how tolerance bugs
// enter. Comparisons must go through a tolerance helper (math.Abs(a-b)
// <= tol) or be visibly intentional.
//
// Allowed without annotation:
//   - comparison against a constant whose float64 value is exact (0,
//     1.5, math.MaxFloat64, ...): sentinel and default checks are safe
//     because the constant round-trips; 0.1 does not and is flagged;
//   - comparison against math.Inf(...): infinities compare exactly;
//   - x != x / x == x: the NaN self-test idiom;
//   - comparisons inside functions whose name marks them as comparison
//     helpers (Equal, almostEqual, approxWithin, ...), where exact
//     fast paths are deliberate.
//
// Everything else needs //lint:allow floatcmp <reason>.
package floatcmp

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "floatcmp",
	Doc:  "flag exact == / != comparisons of floating-point values outside tolerance helpers",
	Run:  run,
}

// helperName marks comparison helpers whose bodies may compare floats
// exactly (an exact fast path before the tolerance check is idiomatic).
var helperName = regexp.MustCompile(`(?i)(equal|almost|approx|within|near|close|tol)`)

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if helperName.MatchString(n.Name.Name) {
					return false
				}
			case *ast.BinaryExpr:
				if n.Op == token.EQL || n.Op == token.NEQ {
					checkCmp(pass, n)
				}
			}
			return true
		})
	}
	return nil
}

func checkCmp(pass *analysis.Pass, cmp *ast.BinaryExpr) {
	if !isFloat(pass, cmp.X) && !isFloat(pass, cmp.Y) {
		return
	}
	// NaN self-test idiom: x != x.
	if types.ExprString(cmp.X) == types.ExprString(cmp.Y) {
		return
	}
	if exactOperand(pass, cmp.X) || exactOperand(pass, cmp.Y) {
		return
	}
	pass.ReportRangef(cmp, "exact floating-point comparison (%s); compare within a tolerance or annotate //lint:allow floatcmp", cmp.Op)
}

func isFloat(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// exactOperand reports whether e's value compares exactly: a constant
// that is exactly representable as float64, or a math.Inf call.
//
// Exactness is judged on the source-level value, not the type-checked
// one: go/types records constants after rounding to the target type, so
// Types[e].Value for 0.1 is already the nearest float64 and would look
// exact. The literal (or the untyped const object's value) keeps full
// precision and tells 0.1 apart from 1.5.
func exactOperand(pass *analysis.Pass, e ast.Expr) bool {
	e = ast.Unparen(e)
	if u, ok := e.(*ast.UnaryExpr); ok && (u.Op == token.SUB || u.Op == token.ADD) {
		e = ast.Unparen(u.X)
	}
	switch e := e.(type) {
	case *ast.BasicLit:
		return floatExact(constant.MakeFromLiteral(e.Value, e.Kind, 0))
	case *ast.Ident:
		if c, ok := pass.TypesInfo.Uses[e].(*types.Const); ok {
			return floatExact(c.Val())
		}
	case *ast.SelectorExpr:
		if c, ok := pass.TypesInfo.Uses[e.Sel].(*types.Const); ok {
			return floatExact(c.Val())
		}
	case *ast.CallExpr:
		if sel, ok := e.Fun.(*ast.SelectorExpr); ok {
			if fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok && fn.FullName() == "math.Inf" {
				return true
			}
		}
	}
	if tv, ok := pass.TypesInfo.Types[e]; ok && tv.Value != nil {
		return floatExact(tv.Value)
	}
	return false
}

// floatExact reports whether v is exactly representable as a float64.
func floatExact(v constant.Value) bool {
	f := constant.ToFloat(v)
	if f.Kind() != constant.Float {
		return false
	}
	_, exact := constant.Float64Val(f)
	return exact
}
