package floatcmpdata

import "math"

func compare(a, b float64) bool {
	if a == b { // want "exact floating-point comparison"
		return true
	}
	return a != b // want "exact floating-point comparison"
}

func allowed(a, b float64, xs []float64) bool {
	if a == 0 || b != 1 { // exact constants: non-finding
		return true
	}
	if a == 1.5 || b != 49.5 { // exactly representable: non-finding
		return true
	}
	if a != a { // NaN self-test idiom: non-finding
		return true
	}
	if a == math.Inf(1) { // infinities compare exactly: non-finding
		return true
	}
	if a == 0.1 { // want "exact floating-point comparison"
		return true
	}
	//lint:allow floatcmp plateau detection is deliberately exact
	if a == b {
		return true
	}
	return xs[0] == xs[1] // want "exact floating-point comparison"
}

// almostEqual is a tolerance helper; its exact fast path is idiomatic.
func almostEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= tol
}

func ints(x, y int) bool { return x == y } // not floats: non-finding

type temp float64

func named(x, y temp) bool {
	return x == y // want "exact floating-point comparison"
}
