package unitflow_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/unitflow"
)

func TestUnitFlow(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), unitflow.Analyzer, "unitlib", "sched")
}
