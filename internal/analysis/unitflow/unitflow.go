// Package unitflow enforces the paper's implicit unit discipline over
// the model packages. Every quantity in Rosenberg's framework has a
// dimension — period lengths and overheads are time, t ⊖ c is work,
// life-function values are probabilities, their derivatives rates —
// but the Go code stores them all as float64, so nothing stops a
// schedule boundary (a time) from being added to an expected-work sum.
// The analyzer runs the dimension engine (internal/analysis/dim: a
// flat dimension lattice propagated by forward dataflow over each
// function's CFG, seeded from //cs:unit annotations, known APIs and
// cross-package facts) and reports every site where two *concretely
// known* dimensions disagree:
//
//   - addition or subtraction of mismatched dimensions (time + work)
//   - ordering or equality comparison across dimensions (time < probability)
//   - call arguments whose dimension contradicts the parameter's
//     declaration — the time-into-work-sink case
//   - assignments and composite-literal fields storing a value of the
//     wrong dimension into annotated storage
//   - returns contradicting an annotated result dimension
//
// Both lattice ends are silent: Unknown (nothing claimed) and Top
// (mixed arithmetic the algebra cannot name) never report, so every
// diagnostic rests on two explicit or soundly propagated dimensions.
// Malformed //cs:unit annotations are reported in any package, so a
// typo cannot silently disable checking.
package unitflow

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/analysis/cfg"
	"repro/internal/analysis/dim"
)

var Analyzer = &analysis.Analyzer{
	Name: "unitflow",
	Doc:  "flag arithmetic, comparisons and stores that mix //cs:unit dimensions (time vs work vs probability)",
	Run:  run,
}

// guarded names the model packages carrying paper formulas.
var guarded = map[string]bool{
	"sched":    true,
	"nowsim":   true,
	"lifefn":   true,
	"core":     true,
	"faultsim": true,
}

func run(pass *analysis.Pass) error {
	// Build (and export) dimension facts even when this package is not
	// guarded: guarded importers need annotations declared here.
	in, err := dim.Of(pass)
	if err != nil {
		return err
	}
	for _, ba := range in.BadAnnots {
		pass.Reportf(ba.Pos, "malformed //cs:unit annotation: %s", ba.Msg)
	}
	if !guarded[analysis.PkgBase(pass.Pkg.Path())] {
		return nil
	}
	for _, fd := range in.Funcs() {
		res, err := in.Analyze(fd)
		if err != nil {
			continue // body too wild for the fixpoint: stay silent
		}
		obj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
		if obj == nil {
			continue
		}
		resultDims := in.FuncDimsOf(obj)
		for _, b := range res.Graph.Blocks {
			env := res.In[b].Clone()
			for _, n := range b.Nodes {
				checkNode(pass, in, env, n, resultDims)
				in.Step(env, n)
			}
		}
	}
	return nil
}

// checkNode inspects one cfg block node under the environment holding
// at its entry. Compound statements never appear in block node lists
// (the cfg builder splits them), so the walk sees each expression in
// exactly one block.
func checkNode(pass *analysis.Pass, in *dim.Info, env dim.Env, n ast.Node, resultDims dim.FuncDims) {
	if rh, ok := n.(*cfg.RangeHeader); ok {
		n = rh.Range.X
	}
	ast.Inspect(n, func(child ast.Node) bool {
		switch e := child.(type) {
		case *ast.BinaryExpr:
			checkBinary(pass, in, env, e)
		case *ast.CallExpr:
			checkCall(pass, in, env, e)
		case *ast.AssignStmt:
			checkAssign(pass, in, env, e)
		case *ast.ReturnStmt:
			checkReturn(pass, in, env, e, resultDims)
		case *ast.CompositeLit:
			checkComposite(pass, in, env, e)
		}
		return true
	})
}

func checkBinary(pass *analysis.Pass, in *dim.Info, env dim.Env, e *ast.BinaryExpr) {
	var verb string
	switch e.Op {
	case token.ADD, token.SUB:
		verb = "mixing"
	case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
		verb = "comparing"
	default:
		return
	}
	x, y := in.ExprDim(env, e.X), in.ExprDim(env, e.Y)
	if !x.Concrete() || !y.Concrete() || x == y {
		return
	}
	pass.ReportRangef(e, "dimension mismatch: %s %v and %v with %q (annotate intent with //cs:unit or convert explicitly)",
		verb, x, y, e.Op.String())
}

func checkCall(pass *analysis.Pass, in *dim.Info, env dim.Env, call *ast.CallExpr) {
	fn, method := in.Callee(call)
	if fn == nil {
		return
	}
	fdims := in.FuncDimsOf(fn)
	if len(fdims.Params) == 0 {
		return
	}
	base := 0
	if method {
		base = 1
	}
	for i, arg := range call.Args {
		want := fdims.Param(base + i)
		got := in.ExprDim(env, arg)
		if !want.Concrete() || !got.Concrete() || want == got {
			continue
		}
		pass.ReportRangef(arg, "dimension mismatch: argument %d of %s wants %v, got %v",
			i+1, fn.Name(), want, got)
	}
}

func checkAssign(pass *analysis.Pass, in *dim.Info, env dim.Env, as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, lhs := range as.Lhs {
		rhs := as.Rhs[i]
		var want dim.Dim
		switch as.Tok {
		case token.ASSIGN, token.DEFINE:
			want = in.StorageDim(lhs)
		case token.ADD_ASSIGN, token.SUB_ASSIGN:
			// x += y is x = x + y: the flow-inferred dimension of x
			// participates, not just declarations.
			want = in.ExprDim(env, lhs)
		default:
			continue
		}
		got := in.ExprDim(env, rhs)
		if !want.Concrete() || !got.Concrete() || want == got {
			continue
		}
		pass.ReportRangef(rhs, "dimension mismatch: storing %v into %v-typed %s",
			got, want, exprName(lhs))
	}
}

func checkReturn(pass *analysis.Pass, in *dim.Info, env dim.Env, ret *ast.ReturnStmt, resultDims dim.FuncDims) {
	for i, r := range ret.Results {
		want := resultDims.Result(i)
		got := in.ExprDim(env, r)
		if !want.Concrete() || !got.Concrete() || want == got {
			continue
		}
		pass.ReportRangef(r, "dimension mismatch: returning %v where the function declares %v", got, want)
	}
}

func checkComposite(pass *analysis.Pass, in *dim.Info, env dim.Env, lit *ast.CompositeLit) {
	t := in.TypesInfo.TypeOf(lit)
	if t == nil {
		return
	}
	named := dim.NamedOf(t)
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return
	}
	for i, elt := range lit.Elts {
		var fv *types.Var
		val := elt
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			key, ok := kv.Key.(*ast.Ident)
			if !ok {
				continue
			}
			fv, _ = in.TypesInfo.Uses[key].(*types.Var)
			val = kv.Value
		} else if i < st.NumFields() {
			fv = st.Field(i)
		}
		if fv == nil {
			continue
		}
		want := in.FieldDim(fv, named)
		got := in.ExprDim(env, val)
		if !want.Concrete() || !got.Concrete() || want == got {
			continue
		}
		pass.ReportRangef(val, "dimension mismatch: field %s is %v, value is %v",
			fv.Name(), want, got)
	}
}

// exprName renders an assignment target for the diagnostic.
func exprName(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprName(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprName(e.X) + "[...]"
	case *ast.StarExpr:
		return "*" + exprName(e.X)
	}
	return "the target"
}
