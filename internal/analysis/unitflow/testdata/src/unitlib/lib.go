// Package unitlib is a fixture dependency: it declares dimensions the
// analyzer does not check here (the package is not a guarded model
// package) but exports as facts, so guarded importers see them.
package unitlib

// Elapsed returns wall-clock progress.
//
//cs:unit return=time
func Elapsed() float64 { return 12.5 }

// Clock carries an annotated field for cross-package field lookups.
type Clock struct {
	Start float64 //cs:unit time
}
