// Fixture for the unitflow analyzer, named sched so the guarded
// package gate applies.
package sched

import "unitlib"

// Schedule mirrors the simulator's annotated schedule.
type Schedule struct {
	Period float64 //cs:unit time
	Total  float64 //cs:unit work
}

// PositiveSub is the paper's ⊖ operator: the one blessed place where
// a difference of times becomes work.
//
//cs:unit t=time c=time return=work
func PositiveSub(t, c float64) float64 {
	if t <= c {
		return 0
	}
	return t - c //lint:allow unitflow t ⊖ c defines the time→work conversion
}

// sink is a work-typed sink for argument checks.
//
//cs:unit w=work
func sink(w float64) float64 { return w }

// True positive: adding a time to a work sum.
func addMix(s Schedule) float64 {
	return s.Period + s.Total // want "mixing time and work"
}

// True positive: ordering comparison across dimensions.
//
//cs:unit p=probability
func cmpMix(s Schedule, p float64) bool {
	return s.Period < p // want "comparing time and probability"
}

// True positive: a time flows into a work-typed parameter.
func callMix(s Schedule) float64 {
	return sink(s.Period) // want "argument 1 of sink wants work, got time"
}

// True positive: storing a time into work-typed storage.
func storeMix(s *Schedule) {
	s.Total = s.Period // want "storing time into work-typed s.Total"
}

// True positive: returning a time from a work-declared function.
//
//cs:unit return=work
func retMix(s Schedule) float64 {
	return s.Period // want "returning time where the function declares work"
}

// True positive (cross-package): the dependency's annotation arrives
// as session facts.
func crossMix() float64 {
	return sink(unitlib.Elapsed()) // want "argument 1 of sink wants work, got time"
}

// True positive (cross-package field): same, through a struct field.
func crossField(c unitlib.Clock) float64 {
	return sink(c.Start) // want "argument 1 of sink wants work, got time"
}

// True positive: composite-literal field of the wrong dimension.
func litMix(s Schedule) Schedule {
	return Schedule{Period: s.Total} // want "field Period is time, value is work"
}

// Non-finding: like dimensions combine freely, and the flow-inferred
// work variable accumulates into the work field.
//
//cs:unit now=time
func okWork(s Schedule, now float64) float64 {
	w := PositiveSub(now, s.Period)
	return w + s.Total
}

// Non-finding: untyped constants adapt to any dimension.
func okConst(s Schedule) float64 {
	return s.Period + 1.5
}

// Non-finding: scaling work by a probability keeps work.
//
//cs:unit p=probability
func okScale(s Schedule, p float64) float64 {
	return sink(s.Total * p)
}

// Non-finding: unannotated quantities claim nothing.
func okUnknown(a, b float64) float64 {
	return a + b
}

// Non-finding: once arithmetic mixes beyond the algebra (Top), the
// analyzer stays silent instead of cascading.
func okTop(s Schedule, b bool) float64 {
	x := s.Period
	if b {
		x = s.Total
	}
	return x + s.Period
}

// Non-finding (suppressed): intentional packing for display.
func allowMix(s Schedule) float64 {
	//lint:allow unitflow intentional: packing both magnitudes into one scalar for a gauge
	return s.Period + s.Total
}
