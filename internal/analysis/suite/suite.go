// Package suite enumerates the repository's analyzers in the order
// drivers run them. cmd/cslint, the vet-tool path and any future CI
// harness all consume this one list, so an analyzer added here is
// enforced everywhere at once.
package suite

import (
	"repro/internal/analysis"
	"repro/internal/analysis/ctxguard"
	"repro/internal/analysis/determinism"
	"repro/internal/analysis/errsink"
	"repro/internal/analysis/floatcmp"
	"repro/internal/analysis/goroutinecap"
	"repro/internal/analysis/hotalloc"
	"repro/internal/analysis/lockorder"
	"repro/internal/analysis/nonnegwork"
	"repro/internal/analysis/obssafe"
	"repro/internal/analysis/printlint"
	"repro/internal/analysis/probrange"
	"repro/internal/analysis/rngshare"
	"repro/internal/analysis/unitflow"
)

// All is the full cslint analyzer suite. The ctxguard, goroutinecap,
// nonnegwork and rngshare analyzers share one interprocedural flow
// build per package (internal/analysis/flow); unitflow and probrange
// share one dimension build (internal/analysis/dim) on top of the
// cfg+dataflow abstract-interpretation engine; hotalloc and lockorder
// share one call-graph build (internal/analysis/callgraph) on top of
// the same flow summaries.
var All = []*analysis.Analyzer{
	ctxguard.Analyzer,
	determinism.Analyzer,
	errsink.Analyzer,
	floatcmp.Analyzer,
	goroutinecap.Analyzer,
	hotalloc.Analyzer,
	lockorder.Analyzer,
	nonnegwork.Analyzer,
	obssafe.Analyzer,
	printlint.Analyzer,
	probrange.Analyzer,
	rngshare.Analyzer,
	unitflow.Analyzer,
}
