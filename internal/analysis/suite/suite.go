// Package suite enumerates the repository's analyzers in the order
// drivers run them. cmd/cslint, the vet-tool path and any future CI
// harness all consume this one list, so an analyzer added here is
// enforced everywhere at once.
package suite

import (
	"repro/internal/analysis"
	"repro/internal/analysis/determinism"
	"repro/internal/analysis/errsink"
	"repro/internal/analysis/floatcmp"
	"repro/internal/analysis/obssafe"
	"repro/internal/analysis/printlint"
)

// All is the full cslint analyzer suite.
var All = []*analysis.Analyzer{
	determinism.Analyzer,
	errsink.Analyzer,
	floatcmp.Analyzer,
	obssafe.Analyzer,
	printlint.Analyzer,
}
