package analysis

import (
	"strings"
	"testing"
)

func TestParseCSDirective(t *testing.T) {
	cases := []struct {
		text    string
		name    string
		payload string
		ok      bool
	}{
		{"//cs:unit time", "unit", "time", true},
		{"// cs:unit t=time return=work", "unit", "t=time return=work", true},
		{"/* cs:hotpath episode */", "hotpath", "episode", true},
		{"//cs:hotpath", "hotpath", "", true},
		{"//cs:hotpath\tlabel", "hotpath", "label", true},
		{"// plain comment", "", "", false},
		{"//cs:", "", "", false},
		{"//cs:Unit time", "", "", false},
		{"//cs:9x", "", "", false},
		{"//lint:allow hotalloc reason", "", "", false},
	}
	for _, c := range cases {
		d, ok := ParseCSDirective(c.text)
		if ok != c.ok || d.Name != c.name || d.Payload != c.payload {
			t.Errorf("ParseCSDirective(%q) = %+v, %v; want {%s %s}, %v",
				c.text, d, ok, c.name, c.payload, c.ok)
		}
	}
}

// FuzzParseCSDirective pins the shared //cs: scanner: no panics, and
// every accepted directive round-trips through its canonical String
// form — the selector/payload split is a fixpoint of the scanner.
func FuzzParseCSDirective(f *testing.F) {
	f.Add("//cs:unit time")
	f.Add("// cs:unit t=time c=time return=work")
	f.Add("/* cs:hotpath episode-loop */")
	f.Add("//cs:hotpath")
	f.Add("//cs:unitary nope")
	f.Add("//cs: hanging")
	f.Add("//not a directive")
	f.Add("//cs:a b")
	f.Fuzz(func(t *testing.T, text string) {
		d, ok := ParseCSDirective(text)
		if !ok {
			return
		}
		if d.Name == "" || strings.ContainsAny(d.Name, " \t") {
			t.Fatalf("accepted selector %q is not a single token", d.Name)
		}
		canon := "//" + d.String()
		d2, ok := ParseCSDirective(canon)
		if !ok {
			t.Fatalf("canonical form %q rejected", canon)
		}
		if d2 != d {
			t.Fatalf("round trip: %+v -> %q -> %+v", d, canon, d2)
		}
	})
}
