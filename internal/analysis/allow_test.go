package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

const allowSrc = `package p

func trailing() {
	_ = 1 //lint:allow alpha exact comparison intended
}

func above() {
	//lint:allow beta plateau detection
	_ = 2
}

func multi() {
	//lint:allow alpha,beta shared justification
	_ = 3
}

func spaced() {
	//lint:allow   gamma   leading whitespace around fields
	_ = 4
}

func catchall() {
	//lint:allow all everything on this line is fine
	_ = 5
}

func bare() {
	//lint:allow
	_ = 6
}

func unrelated() {
	// lint:allow is discussed here but the marker needs to lead
	_ = 7
}
`

// allowLine returns the position of the statement on the given
// 1-indexed line of allowSrc.
func posOnLine(t *testing.T, fset *token.FileSet, f *ast.File, line int) token.Pos {
	t.Helper()
	var found token.Pos
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil || found != token.NoPos {
			return false
		}
		if _, ok := n.(*ast.AssignStmt); ok && fset.Position(n.Pos()).Line == line {
			found = n.Pos()
			return false
		}
		return true
	})
	if found == token.NoPos {
		t.Fatalf("no assignment on line %d", line)
	}
	return found
}

func TestCollectSuppressions(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "allow.go", allowSrc, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	sup := CollectSuppressions(fset, []*ast.File{f})

	cases := []struct {
		name     string
		line     int
		analyzer string
		want     bool
	}{
		// Trailing style: the directive shares the finding's line.
		{"trailing same analyzer", 4, "alpha", true},
		{"trailing other analyzer", 4, "beta", false},

		// Line-above style: the directive is on the preceding line.
		{"above same analyzer", 9, "beta", true},
		{"above other analyzer", 9, "alpha", false},

		// Multi-analyzer directive: both names apply, others do not.
		{"multi first name", 14, "alpha", true},
		{"multi second name", 14, "beta", true},
		{"multi unnamed analyzer", 14, "gamma", false},

		// Extra whitespace between fields must not break parsing.
		{"whitespace tolerated", 19, "gamma", true},

		// "all" suppresses any analyzer at that line.
		{"all catches alpha", 24, "alpha", true},
		{"all catches gamma", 24, "gamma", true},

		// A bare marker with no analyzer list suppresses nothing.
		{"bare directive", 29, "alpha", false},

		// Prose mentioning lint:allow mid-comment is not a directive.
		{"mid-comment mention", 34, "alpha", false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pos := posOnLine(t, fset, f, tc.line)
			if got := sup.Allowed(fset, pos, tc.analyzer); got != tc.want {
				t.Errorf("Allowed(line %d, %q) = %v, want %v", tc.line, tc.analyzer, got, tc.want)
			}
		})
	}
}

// TestSuppressionDoesNotLeakDownward pins the coverage window: a
// directive covers its own line and the one below, never further.
func TestSuppressionDoesNotLeakDownward(t *testing.T) {
	src := `package p

func f() {
	//lint:allow alpha only the next line
	_ = 1
	_ = 2
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "leak.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	sup := CollectSuppressions(fset, []*ast.File{f})
	if !sup.Allowed(fset, posOnLine(t, fset, f, 5), "alpha") {
		t.Error("line directly below the directive not suppressed")
	}
	if sup.Allowed(fset, posOnLine(t, fset, f, 6), "alpha") {
		t.Error("suppression leaked two lines below the directive")
	}
}
