package load

import "sort"

// Sort returns the packages ordered dependency-first: if a loaded
// package imports another loaded package (directly or transitively),
// the importee comes first. Drivers analyze packages in this order so
// that cross-package facts (function summaries exported into an
// analysis.Session) are available before their importers are analyzed.
// Packages are keyed by the import path their *types.Package reports;
// test-variant packages ("p_test") naturally sort after the package
// under test because they import it. Ties are broken by import path,
// so the order is deterministic.
func Sort(pkgs []*Package) []*Package {
	byPath := make(map[string]*Package, len(pkgs))
	for _, p := range pkgs {
		// The test-augmented variant and the external test package carry
		// distinct ImportPaths; importers resolve the plain path, which
		// p.Types.Path() reports for both the bare and augmented builds.
		if byPath[p.Types.Path()] == nil {
			byPath[p.Types.Path()] = p
		}
	}
	sorted := append([]*Package(nil), pkgs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ImportPath < sorted[j].ImportPath })

	var out []*Package
	state := make(map[*Package]int) // 0 unvisited, 1 visiting, 2 done
	var visit func(p *Package)
	visit = func(p *Package) {
		if state[p] != 0 {
			return
		}
		state[p] = 1
		for _, imp := range p.Types.Imports() {
			if dep, ok := byPath[imp.Path()]; ok && dep != p && state[dep] != 1 {
				visit(dep)
			}
		}
		state[p] = 2
		out = append(out, p)
	}
	for _, p := range sorted {
		visit(p)
	}
	return out
}
