// Package load parses and type-checks packages of the enclosing module
// for static analysis, using only the standard library.
//
// The usual loader for analysis drivers, golang.org/x/tools/go/packages,
// is unavailable in this build environment, so this package implements
// the subset the lint suite needs: pattern expansion ("./...", package
// directories, or bare import paths for test fixtures), module-aware
// import resolution (module packages are type-checked from source in
// dependency order), GOPATH-style fixture roots for golden tests, and
// stdlib imports through go/importer's "source" importer, which
// type-checks GOROOT sources and therefore needs no pre-built export
// data or network access.
package load

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Config directs a load.
type Config struct {
	// Dir anchors relative patterns and the module lookup (go.mod is
	// searched for in Dir and its parents). Defaults to ".".
	Dir string
	// SrcDirs are GOPATH-style roots consulted first when resolving a
	// bare import path: an import "p" resolves to <srcdir>/p if that
	// directory exists. Golden tests point this at testdata/src so
	// fixtures can supply fake dependencies.
	SrcDirs []string
	// Tests includes _test.go files: in-package test files are merged
	// into their package, and external test packages are returned as
	// separate packages with an "_test" path suffix.
	Tests bool
}

// Package is one loaded, type-checked package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

type loader struct {
	cfg        Config
	fset       *token.FileSet
	moduleDir  string
	modulePath string
	std        types.Importer
	deps       map[string]*types.Package // import cache (no test files)
	loading    map[string]bool           // cycle detection
}

// Load expands the patterns and returns the type-checked packages.
// Patterns containing a path separator (or equal to ".") name
// directories, with the "/..." suffix walking recursively; other
// patterns are import paths resolved through SrcDirs and the module.
func (c Config) Load(patterns ...string) ([]*Package, error) {
	if c.Dir == "" {
		c.Dir = "."
	}
	absDir, err := filepath.Abs(c.Dir)
	if err != nil {
		return nil, err
	}
	l := &loader{
		cfg:     c,
		fset:    token.NewFileSet(),
		deps:    make(map[string]*types.Package),
		loading: make(map[string]bool),
	}
	l.moduleDir, l.modulePath = findModule(absDir)
	// The source importer type-checks GOROOT packages from source; with
	// cgo enabled it would shell out to the cgo tool for packages like
	// net. Analysis needs only the pure-Go API surface, so force the
	// nocgo variants.
	build.Default.CgoEnabled = false
	l.std = importer.ForCompiler(l.fset, "source", nil)

	dirs, paths, err := l.expand(absDir, patterns)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, d := range dirs {
		got, err := l.loadTarget(d, l.importPathFor(d))
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, got...)
	}
	for _, p := range paths {
		dir, err := l.resolve(p)
		if err != nil {
			return nil, err
		}
		got, err := l.loadTarget(dir, p)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, got...)
	}
	return pkgs, nil
}

// ModuleRoot walks up from dir looking for go.mod and returns the
// enclosing module's root directory, or dir itself when no module is
// found. Drivers anchor diagnostic and baseline paths here, so a
// baseline written at the repo root suppresses the same findings no
// matter which subdirectory cslint is invoked from.
func ModuleRoot(dir string) string {
	if root, _ := findModule(dir); root != "" {
		return root
	}
	return dir
}

// findModule walks up from dir looking for go.mod and returns the
// module root and module path ("", "" when there is none).
func findModule(dir string) (root, path string) {
	for d := dir; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module"); ok {
					return d, strings.Trim(strings.TrimSpace(rest), `"`)
				}
			}
			return d, ""
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", ""
		}
		d = parent
	}
}

// expand splits patterns into package directories and import paths.
func (l *loader) expand(base string, patterns []string) (dirs, paths []string, err error) {
	seen := make(map[string]bool)
	addDir := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "..." || strings.HasSuffix(pat, "/...") || strings.HasSuffix(pat, string(filepath.Separator)+"..."):
			root := strings.TrimSuffix(strings.TrimSuffix(pat, "..."), "/")
			root = strings.TrimSuffix(root, string(filepath.Separator))
			if root == "" {
				root = "."
			}
			if !filepath.IsAbs(root) {
				root = filepath.Join(base, root)
			}
			werr := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if p != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
					return filepath.SkipDir
				}
				if hasGoFiles(p) {
					addDir(p)
				}
				return nil
			})
			if werr != nil {
				return nil, nil, werr
			}
		case pat == "." || strings.ContainsAny(pat, "./\\"):
			d := pat
			if !filepath.IsAbs(d) {
				d = filepath.Join(base, d)
			}
			if !hasGoFiles(d) {
				return nil, nil, fmt.Errorf("load: no Go files in %s", d)
			}
			addDir(d)
		default:
			paths = append(paths, pat)
		}
	}
	sort.Strings(dirs)
	return dirs, paths, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasPrefix(e.Name(), ".") && !strings.HasPrefix(e.Name(), "_") {
			return true
		}
	}
	return false
}

// importPathFor derives the canonical import path of a module
// directory; outside any module the directory path itself is used.
func (l *loader) importPathFor(dir string) string {
	if l.moduleDir != "" {
		if rel, err := filepath.Rel(l.moduleDir, dir); err == nil && !strings.HasPrefix(rel, "..") {
			if rel == "." {
				return l.modulePath
			}
			return l.modulePath + "/" + filepath.ToSlash(rel)
		}
	}
	return filepath.ToSlash(dir)
}

// resolve maps an import path to its source directory: fixture roots
// first (so golden tests can shadow), then the module tree.
func (l *loader) resolve(path string) (string, error) {
	for _, sd := range l.cfg.SrcDirs {
		d := filepath.Join(sd, filepath.FromSlash(path))
		if hasGoFiles(d) {
			return d, nil
		}
	}
	if l.modulePath != "" {
		if path == l.modulePath {
			return l.moduleDir, nil
		}
		if rest, ok := strings.CutPrefix(path, l.modulePath+"/"); ok {
			d := filepath.Join(l.moduleDir, filepath.FromSlash(rest))
			if hasGoFiles(d) {
				return d, nil
			}
		}
	}
	return "", fmt.Errorf("load: cannot resolve import %q", path)
}

// parseDir parses every buildable .go file in dir into three groups:
// the package's own files, in-package _test.go files, and external
// (package foo_test) test files.
func (l *loader) parseDir(dir string) (base, inTest, extTest []*ast.File, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasPrefix(n, ".") || strings.HasPrefix(n, "_") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		f, perr := parser.ParseFile(l.fset, filepath.Join(dir, n), nil, parser.ParseComments|parser.SkipObjectResolution)
		if perr != nil {
			return nil, nil, nil, perr
		}
		switch {
		case strings.HasSuffix(f.Name.Name, "_test"):
			extTest = append(extTest, f)
		case strings.HasSuffix(n, "_test.go"):
			inTest = append(inTest, f)
		default:
			base = append(base, f)
		}
	}
	if len(base) == 0 && len(inTest) == 0 && len(extTest) == 0 {
		return nil, nil, nil, fmt.Errorf("load: no Go files in %s", dir)
	}
	return base, inTest, extTest, nil
}

// loadTarget loads the package in dir for analysis, optionally with its
// test files and its external test package.
func (l *loader) loadTarget(dir, importPath string) ([]*Package, error) {
	base, inTest, extTest, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	files := base
	if l.cfg.Tests {
		files = append(append([]*ast.File{}, base...), inTest...)
	}
	var self *types.Package
	if len(files) > 0 {
		p, err := l.check(importPath, dir, files, nil)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
		self = p.Types
	}
	if l.cfg.Tests && len(extTest) > 0 {
		// The external test package imports the package under test; give
		// it the test-augmented version just checked, like the go tool's
		// test variants.
		override := map[string]*types.Package{importPath: self}
		p, err := l.check(importPath+"_test", dir, extTest, override)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// check type-checks one package with full syntax and type information.
func (l *loader) check(path, dir string, files []*ast.File, override map[string]*types.Package) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	tpkg, err := l.typecheck(path, files, info, override)
	if err != nil {
		return nil, err
	}
	return &Package{
		ImportPath: path,
		Dir:        dir,
		Fset:       l.fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}

const maxTypeErrors = 10

func (l *loader) typecheck(path string, files []*ast.File, info *types.Info, override map[string]*types.Package) (*types.Package, error) {
	var terrs []error
	conf := types.Config{
		Importer: importerFunc(func(p string) (*types.Package, error) {
			if override != nil && override[p] != nil {
				return override[p], nil
			}
			return l.importPkg(p)
		}),
		Sizes: types.SizesFor("gc", build.Default.GOARCH),
		Error: func(err error) {
			if len(terrs) < maxTypeErrors {
				terrs = append(terrs, err)
			}
		},
	}
	tpkg, _ := conf.Check(path, l.fset, files, info)
	if len(terrs) > 0 {
		msgs := make([]string, len(terrs))
		for i, e := range terrs {
			msgs[i] = e.Error()
		}
		return nil, fmt.Errorf("load: type errors in %s:\n\t%s", path, strings.Join(msgs, "\n\t"))
	}
	return tpkg, nil
}

// importPkg resolves and type-checks a dependency (without test files),
// caching the result. Standard-library paths fall through to the source
// importer.
func (l *loader) importPkg(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := l.deps[path]; ok {
		return p, nil
	}
	dir, err := l.resolve(path)
	if err != nil {
		// Not a module or fixture package: assume standard library.
		return l.std.Import(path)
	}
	if l.loading[path] {
		return nil, fmt.Errorf("load: import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)
	base, _, _, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	tpkg, err := l.typecheck(path, base, nil, nil)
	if err != nil {
		return nil, err
	}
	l.deps[path] = tpkg
	return tpkg, nil
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
