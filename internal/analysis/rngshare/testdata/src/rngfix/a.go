// Fixture for the rngshare analyzer: one seeded stream must not feed
// more than one goroutine.
package rngfix

import (
	"sync"

	"rng"
)

// True positive: one stream drawn by every worker of a loop.
func loopShare(n int) {
	src := rng.New(1)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() { // want "enters a goroutine spawned in a loop"
			defer wg.Done()
			_ = src.Uint64()
		}()
	}
	wg.Wait()
}

// True positive: two distinct goroutines share the stream.
func twoGoroutines() {
	src := rng.New(2)
	done := make(chan bool)
	go func() { _ = src.Uint64(); done <- true }()
	go func() { _ = src.Float64(); done <- true }() // want "shared across 2 goroutine sites"
	<-done
	<-done
}

// True positive: the spawner keeps drawing while a goroutine uses the
// same stream, with no barrier in between.
func spawnerAndGoroutine() float64 {
	src := rng.New(3)
	done := make(chan bool)
	go func() { _ = src.Uint64(); done <- true }()
	x := src.Float64() // want "while a goroutine spawned earlier also uses it"
	<-done
	return x
}

// pump hands its stream to a goroutine; callers inherit the hazard
// through pump's flow summary.
func pump(s *rng.Source, out chan uint64) {
	go func() {
		out <- s.Uint64()
	}()
}

// True positive (interprocedural): two pump calls share one stream.
func viaHelper() {
	src := rng.New(4)
	out := make(chan uint64, 2)
	pump(src, out)
	pump(src, out) // want "shared across 2 goroutine sites"
	<-out
	<-out
}

// Non-finding: each worker receives its own split stream; the loop
// body's sub is a fresh variable per iteration.
func splitPerWorker(n int) {
	src := rng.New(5)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		sub := src.Split()
		go func() {
			defer wg.Done()
			_ = sub.Uint64()
		}()
	}
	wg.Wait()
}

// Non-finding: a single handoff; the spawner never touches the stream
// again.
func handOff() {
	src := rng.New(6)
	done := make(chan bool)
	go func() { _ = src.Uint64(); done <- true }()
	<-done
}

// Non-finding: the spawner reuses the stream only after the channel
// receive guarantees the goroutine is done — the draw order is fixed.
func sequentialReuse() float64 {
	src := rng.New(7)
	done := make(chan bool)
	go func() { _ = src.Uint64(); done <- true }()
	<-done
	return src.Float64()
}

// Non-finding (suppressed): deliberate sharing, annotated with a
// reason.
func allowed() {
	src := rng.New(8)
	done := make(chan bool)
	go func() { _ = src.Uint64(); done <- true }()
	//lint:allow rngshare demo of deliberate shared stream
	go func() { _ = src.Uint64(); done <- true }()
	<-done
	<-done
}
