// Package rng is a fixture stand-in for repro/internal/rng: a seeded,
// splittable random stream. Only the shape matters to the analyzer —
// the package base "rng" and the Source type name.
package rng

type Source struct{ state uint64 }

func New(seed uint64) *Source { return &Source{state: seed} }

func (s *Source) Uint64() uint64 {
	s.state = s.state*6364136223846793005 + 1442695040888963407
	return s.state
}

func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Split derives an independent stream; the parent advances once.
func (s *Source) Split() *Source {
	return &Source{state: s.Uint64() ^ 0x9e3779b97f4a7c15}
}
