package rngshare_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/rngshare"
)

func TestRngShare(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), rngshare.Analyzer, "rngfix")
}
