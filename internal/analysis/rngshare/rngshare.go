// Package rngshare guards the determinism contract's sharpest edge:
// one seeded random stream consumed from more than one goroutine. Even
// when every draw is mutex-safe, the *order* of draws across
// goroutines depends on the scheduler, so a shared stream silently
// breaks the bit-identical-trace guarantee the simulators promise
// (ROADMAP: seeded run ⇒ identical trace). The supported pattern is
// stream splitting: derive an independent per-worker stream with
// Split() in the spawner and hand each goroutine its own.
//
// Using the flow engine, the analyzer flags a random-stream value
// (repro/internal/rng Source/Rng, or math/rand's Source/Rand) that:
//   - enters a goroutine spawned in a loop (every worker shares it),
//   - enters two or more distinct goroutine sites (spawned literals or
//     calls whose summary says the argument reaches a goroutine), or
//   - enters one goroutine while the spawner also keeps drawing from it
//     with no barrier (WaitGroup.Wait or channel receive) in between.
//
// Handing the result of Split() into a goroutine is clean by
// construction: the value entering the goroutine is the derived
// stream, not the shared parent.
package rngshare

import (
	"go/token"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/analysis/flow"
)

var Analyzer = &analysis.Analyzer{
	Name: "rngshare",
	Doc:  "flag a seeded random stream flowing into more than one goroutine",
	Run:  run,
}

// streamTypes names the random-stream types per package base.
var streamTypes = map[string]map[string]bool{
	"rng":  {"Source": true, "Rng": true},
	"rand": {"Source": true, "Rand": true, "PCG": true, "ChaCha8": true},
}

// isStream reports whether t (possibly behind pointers) is a
// random-stream type.
func isStream(t types.Type) bool {
	for {
		p, ok := t.Underlying().(*types.Pointer)
		if !ok {
			break
		}
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	names := streamTypes[analysis.PkgBase(obj.Pkg().Path())]
	return names != nil && names[obj.Name()]
}

// entry is one site where the stream enters a goroutine.
type entry struct {
	pos, end token.Pos
	inLoop   bool
}

func run(pass *analysis.Pass) error {
	in, err := flow.Of(pass)
	if err != nil {
		return err
	}
	for _, fi := range in.Funcs {
		checkFunc(pass, in, fi)
	}
	return nil
}

func checkFunc(pass *analysis.Pass, in *flow.Info, fi *flow.FuncInfo) {
	// Distinct stream variables, in first-use order.
	var vars []*types.Var
	seen := make(map[*types.Var]bool)
	for _, u := range fi.Uses {
		if !seen[u.Var] && isStream(u.Var.Type()) {
			seen[u.Var] = true
			vars = append(vars, u.Var)
		}
	}
	for _, v := range vars {
		home := fi.HomeSpawn(v)
		uses := fi.UsesOf(v)

		spawnsUsing := make(map[*flow.Spawn]bool)
		var outer []*flow.Use
		for _, u := range uses {
			if u.Spawn != home && u.Spawn != nil {
				spawnsUsing[u.Spawn] = true
			} else {
				outer = append(outer, u)
			}
		}

		var entries []entry
		for _, s := range fi.Spawns {
			if spawnsUsing[s] {
				entries = append(entries, entry{pos: s.Go.Pos(), end: s.Go.End(), inLoop: s.InLoopFor(v)})
			}
		}
		var plain []*flow.Use
		for _, u := range outer {
			if u.Arg != nil && u.Arg.Index >= 0 {
				// A callee that joins its goroutines before returning is
				// synchronous: the draws it makes are deterministically
				// ordered, so the call is an ordinary spawner-side use.
				if sum, ok := in.SummaryOf(u.Arg.Site.Callee); ok && !sum.Joins &&
					sum.Param(u.Arg.Index)&(flow.ReachesGoroutine|flow.WrittenInGoroutine) != 0 {
					entries = append(entries, entry{
						pos:    u.Arg.Site.Call.Pos(),
						end:    u.Arg.Site.Call.End(),
						inLoop: u.Arg.Site.InLoopFor(v),
					})
					continue
				}
				// Unresolvable callees are treated as ordinary
				// spawner-side uses rather than guessed at.
			}
			plain = append(plain, u)
		}
		if len(entries) == 0 {
			continue
		}

		looped := -1
		for i, e := range entries {
			if e.inLoop {
				looped = i
				break
			}
		}
		switch {
		case looped >= 0:
			pass.Reportf(entries[looped].pos,
				"rng stream %q enters a goroutine spawned in a loop: every worker draws from the same stream in scheduler order; hand each worker its own stream via Split",
				v.Name())
		case len(entries) >= 2:
			pass.Reportf(entries[1].pos,
				"rng stream %q is shared across %d goroutine sites: draw order depends on the scheduler; derive independent streams via Split",
				v.Name(), len(entries))
		default:
			e := entries[0]
			for _, u := range plain {
				if u.Pos > e.pos && !fi.BarrierBetween(e.end, u.Pos) {
					pass.Reportf(u.Pos,
						"rng stream %q is drawn from here while a goroutine spawned earlier also uses it, with no barrier between: split streams or synchronize",
						v.Name())
					break
				}
			}
		}
	}
}
