package analysis

import "sync"

// A Session carries cross-package analysis state — facts, in the
// golang.org/x/tools/go/analysis sense — through a multi-package run.
// Interprocedural analyses (the flow engine under
// internal/analysis/flow) summarize each package's functions once and
// export the summaries as an opaque, serializable blob keyed by a
// namespace; when a later package in the same session calls into an
// already-summarized package, the propagator consults the session
// instead of re-deriving (or worse, guessing) the callee's behavior.
//
// The three drivers thread sessions differently but equivalently:
//
//   - The standalone driver and the analysistest harness analyze
//     packages dependency-first (load.Sort) with one shared in-memory
//     session, so facts flow from a package to its importers within the
//     process.
//   - The go vet -vettool driver runs once per package in separate
//     processes; there the session is rehydrated from the .vetx facts
//     files cmd/go hands us for every import, and this package's facts
//     are serialized back out as our .vetx output (see
//     internal/analysis/unit).
//
// A nil *Session is valid everywhere and simply has no facts, degrading
// interprocedural analyses to conservative intra-package results.
type Session struct {
	mu    sync.Mutex
	facts map[string]map[string][]byte // package path -> namespace -> blob
}

// NewSession returns an empty session.
func NewSession() *Session {
	return &Session{facts: make(map[string]map[string][]byte)}
}

// SetFacts records the blob as package path's facts under namespace ns,
// replacing any previous blob. A nil session ignores the write.
func (s *Session) SetFacts(path, ns string, data []byte) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	m := s.facts[path]
	if m == nil {
		m = make(map[string][]byte)
		s.facts[path] = m
	}
	m[ns] = data
}

// Facts returns package path's blob under namespace ns, or nil when the
// session is nil or holds none.
func (s *Session) Facts(path, ns string) []byte {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.facts[path][ns]
}

// PackageFacts returns every namespace blob recorded for package path
// (nil when none), for serialization into a vetx facts file.
func (s *Session) PackageFacts(path string) map[string][]byte {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	m := s.facts[path]
	if len(m) == 0 {
		return nil
	}
	out := make(map[string][]byte, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// ImportFacts installs a deserialized facts map for package path, as
// read back from a vetx file.
func (s *Session) ImportFacts(path string, m map[string][]byte) {
	for ns, data := range m {
		s.SetFacts(path, ns, data)
	}
}
