package cyclesteal_test

import (
	"fmt"
	"log"

	cyclesteal "repro"
)

// Plan a cycle-stealing episode under uniform reclaim risk and inspect
// the guideline schedule.
func ExamplePlan() {
	life, err := cyclesteal.UniformRisk(100) // owner back within 100s
	if err != nil {
		log.Fatal(err)
	}
	plan, err := cyclesteal.Plan(life, 1) // 1s setup per chunk
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("t0=%.2f periods=%d E=%.2f\n",
		plan.T0, plan.Schedule.Len(), plan.ExpectedWork)
	// The uniform-risk recurrence (paper eq. 4.1): t_k = t_{k-1} - c.
	fmt.Printf("t1=%.2f t2=%.2f\n", plan.Schedule.Period(1), plan.Schedule.Period(2))
	// Output:
	// t0=13.64 periods=13 E=41.07
	// t1=12.64 t2=11.64
}

// Expected work of a hand-rolled schedule, equation (2.1).
func ExampleExpectedWork() {
	life, _ := cyclesteal.UniformRisk(10)
	s := mustSchedule(4, 3)
	// E = (4-1)·p(4) + (3-1)·p(7) = 3·0.6 + 2·0.3 = 2.4
	fmt.Printf("%.2f\n", cyclesteal.ExpectedWork(s, life, 1))
	// Output: 2.40
}

// The memoryless scenario: equal periods are optimal, and the planner
// finds them.
func ExampleHalfLife() {
	life, _ := cyclesteal.HalfLife(32) // absence survival halves every 32s
	plan, _ := cyclesteal.Plan(life, 1)
	fmt.Printf("t0=%.3f t1=%.3f equal=%v\n",
		plan.Schedule.Period(0), plan.Schedule.Period(1),
		plan.Schedule.Period(1)-plan.Schedule.Period(0) < 1e-6)
	// Output: t0=9.954 t1=9.954 equal=true
}

// Checking whether a life function admits an optimal schedule at all
// (the paper's Corollary 3.2 example).
func ExampleAdmitsOptimal() {
	heavyTail, _ := cyclesteal.PolynomialRisk(1, 100) // fine: bounded horizon
	ok, _, _ := cyclesteal.AdmitsOptimal(heavyTail, 1)
	fmt.Println("uniform risk admits an optimum:", ok)
	// Output: uniform risk admits an optimum: true
}

func mustSchedule(periods ...float64) cyclesteal.Schedule {
	s, err := newSchedule(periods...)
	if err != nil {
		log.Fatal(err)
	}
	return s
}

func newSchedule(periods ...float64) (cyclesteal.Schedule, error) {
	// The facade re-exports sched.Schedule; build through the internal
	// constructor via a plan-free path: FromTraceSamples would be
	// overkill, so use the exported type's zero value plus Append.
	var s cyclesteal.Schedule
	return s.Append(periods...)
}
