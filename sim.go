package cyclesteal

import (
	"repro/internal/core"
	"repro/internal/faultsim"
	"repro/internal/lifefn"
	"repro/internal/nowsim"
	"repro/internal/optimal"
	"repro/internal/rng"
	"repro/internal/trace"
)

// This file re-exports the simulation, trace and application layers so
// downstream users can drive the full system through one import.

// Simulation types.
type (
	// Rand is the library's deterministic random source.
	Rand = rng.Source
	// Task is one indivisible unit of a data-parallel job.
	Task = nowsim.Task
	// TaskPool holds a data-parallel job's outstanding tasks.
	TaskPool = nowsim.TaskPool
	// Worker describes one borrowable workstation in a farm.
	Worker = nowsim.Worker
	// FarmConfig configures a multi-workstation farm run.
	FarmConfig = nowsim.FarmConfig
	// FarmResult summarizes a farm run.
	FarmResult = nowsim.FarmResult
	// Owner models when a workstation's owner reclaims it.
	Owner = nowsim.Owner
	// LifeOwner reclaims according to a life function.
	LifeOwner = nowsim.LifeOwner
	// TaskEpisodeResult is the outcome of a task-level episode.
	TaskEpisodeResult = nowsim.TaskEpisodeResult
	// CheckpointConfig configures the fault-prone checkpointing
	// application (the paper's Section 1 Remark).
	CheckpointConfig = faultsim.Config
	// CheckpointResult is one fault-prone run's outcome.
	CheckpointResult = faultsim.Result
	// Observation is one recorded owner absence (possibly censored).
	Observation = trace.Observation
)

// NewRand returns a deterministic random source for the simulators.
func NewRand(seed uint64) *Rand { return rng.New(seed) }

// NewSchedulePolicy wraps a schedule as an episode policy.
func NewSchedulePolicy(s Schedule, name string) Policy {
	return nowsim.NewSchedulePolicy(s, name)
}

// NewFixedChunkPolicy dispatches constant-size periods.
func NewFixedChunkPolicy(chunk float64) Policy {
	return &nowsim.FixedChunkPolicy{Chunk: chunk}
}

// NewProgressivePolicy re-plans each period from conditional survival
// (the paper's Section 6 regimen).
func NewProgressivePolicy(l Life, c float64) (Policy, error) {
	return nowsim.NewProgressivePolicy(l, c, core.PlanOptions{})
}

// RunEpisode plays one episode of a policy against a known reclaim
// time.
func RunEpisode(p Policy, c, reclaim float64) EpisodeResult {
	return nowsim.RunEpisode(p, c, reclaim)
}

// RunTaskEpisode plays one episode dispatching indivisible tasks from
// a pool.
func RunTaskEpisode(p Policy, pool *TaskPool, c, reclaim float64) TaskEpisodeResult {
	return nowsim.RunTaskEpisode(p, pool, c, reclaim)
}

// NewUniformTasks builds a pool of n identical tasks of duration d.
func NewUniformTasks(n int, d float64) (*TaskPool, error) {
	return nowsim.NewUniformTasks(n, d)
}

// NewRandomTasks builds a pool of n tasks with uniform durations in
// [lo, hi).
func NewRandomTasks(n int, lo, hi float64, src *Rand) (*TaskPool, error) {
	return nowsim.NewRandomTasks(n, lo, hi, src)
}

// RunFarm executes a data-parallel job on a farm of borrowed
// workstations.
func RunFarm(cfg FarmConfig, pool *TaskPool) (FarmResult, error) {
	return nowsim.RunFarm(cfg, pool)
}

// RunCheckpointed executes one fault-prone computation (the Remark's
// "scheduling saves" application).
func RunCheckpointed(cfg CheckpointConfig, src *Rand) (CheckpointResult, error) {
	return faultsim.Run(cfg, src)
}

// SimulateEpisodesParallel is SimulateEpisodes across a goroutine pool
// (workers <= 0 uses GOMAXPROCS); results are bit-identical for any
// worker count.
func SimulateEpisodesParallel(s Schedule, l Life, c float64, episodes int, seed uint64, workers int) (mean, ci95 float64) {
	res := nowsim.MonteCarloParallel(func() Policy {
		return nowsim.NewSchedulePolicy(s, "facade")
	}, nowsim.LifeOwner{Life: l}, c, episodes, seed, workers)
	return res.Work.Mean, res.Work.CI95
}

// SampleAbsences draws owner-absence observations whose survival is l.
func SampleAbsences(l Life, n int, src *Rand) []Observation {
	return trace.SampleAbsences(l, n, src)
}

// FitLifeFromTrace estimates a differentiable life function from
// absence observations (product-limit estimate + monotone smoothing).
func FitLifeFromTrace(obs []Observation, knots int) (Life, error) {
	return trace.FitLife(obs, trace.FitOptions{Knots: knots})
}

// OptimalFor returns the provably optimal schedule of [BCLR97] for the
// three scenarios it covers, and a scenario-agnostic numerical optimum
// otherwise. The second return is the optimal expected work.
func OptimalFor(l Life, c float64) (Schedule, float64, error) {
	var (
		res optimal.Result
		err error
	)
	switch f := l.(type) {
	case lifefn.Uniform:
		res, err = optimal.Uniform(f, c)
	case lifefn.GeomDecreasing:
		res, err = optimal.GeomDecreasing(f, c, 0, 0)
	case lifefn.GeomIncreasing:
		res, err = optimal.GeomIncreasing(f, c)
	default:
		res, err = optimal.GroundTruth(l, c, optimal.GroundTruthOptions{})
	}
	if err != nil {
		return Schedule{}, 0, err
	}
	return res.Schedule, res.ExpectedWork, nil
}

// AdmitsOptimal reports whether l admits an optimal schedule under the
// paper's Corollary 3.2 criteria, with diagnostics.
func AdmitsOptimal(l Life, c float64) (bool, string, error) {
	ad, err := core.AdmitsOptimal(l, c, core.PlanOptions{})
	if err != nil {
		return false, "", err
	}
	return ad.Admits, ad.Reason, nil
}
