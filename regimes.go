package cyclesteal

import (
	"repro/internal/discrete"
	"repro/internal/trace"
	"repro/internal/worstcase"
)

// This file re-exports the alternative scheduling regimes: the integer
// (discrete-time) analogue the paper's Section 6 asks about, the
// worst-case bounded-adversary game its sequel studies, and the
// parametric trace-fitting alternatives.

// DiscreteOptimal computes the exactly optimal integer-period schedule
// by dynamic programming (the affirmative answer to the paper's
// "discrete analogue" open question — see experiment E12). horizon
// bounds the integer time axis; use DiscreteHorizonFor to choose it.
func DiscreteOptimal(l Life, c float64, horizon int) (Schedule, float64, error) {
	res, err := discrete.Optimal(l, c, horizon)
	if err != nil {
		return Schedule{}, 0, err
	}
	return res.Schedule, res.ExpectedWork, nil
}

// DiscreteHorizonFor suggests a DP horizon for a life function.
func DiscreteHorizonFor(l Life) int {
	return discrete.HorizonFor(l, 1e-9, 1<<20)
}

// RoundToIntegerPeriods is the natural discrete analogue of a
// continuous schedule: nearest-integer periods in productive normal
// form. Experiment E12 shows it loses a fraction of a percent against
// DiscreteOptimal.
func RoundToIntegerPeriods(s Schedule, c float64) (Schedule, error) {
	return discrete.RoundSchedule(s, c)
}

// WorstCaseOptimal returns the schedule maximizing guaranteed work for
// an episode of lifespan L when an adversary may interrupt up to q
// times (each interruption destroys the period in progress): m equal
// periods with the best m, guaranteeing ≈ L - 2·sqrt(qcL) + qc.
func WorstCaseOptimal(lifespan, c float64, q int) (Schedule, float64, error) {
	res, err := worstcase.Optimal(lifespan, c, q)
	if err != nil {
		return Schedule{}, 0, err
	}
	return res.Schedule, res.Guaranteed, nil
}

// GuaranteedWork returns the work schedule s retains against an optimal
// adversary striking at most q of its periods.
func GuaranteedWork(s Schedule, c float64, q int) float64 {
	return worstcase.GuaranteedWork(s, c, q)
}

// FitHalfLifeFromTrace fits the memoryless (exponential) life function
// by maximum likelihood; censored observations are handled correctly.
func FitHalfLifeFromTrace(obs []Observation) (Life, error) {
	return trace.FitGeomDecreasing(obs)
}

// FitUniformFromTrace fits the uniform-risk life function by maximum
// likelihood.
func FitUniformFromTrace(obs []Observation) (Life, error) {
	return trace.FitUniform(obs)
}
