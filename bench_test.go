package cyclesteal

import (
	"math"
	"testing"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/faultsim"
	"repro/internal/lifefn"
	"repro/internal/nowsim"
	"repro/internal/optimal"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/trace"
)

// --- One benchmark per experiment (E1–E11 in DESIGN.md): each bench
// regenerates the corresponding table end to end, so `go test -bench`
// doubles as the full reproduction harness with timing.

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE1UniformRisk(b *testing.B)    { benchExperiment(b, "E1") }
func BenchmarkE2PolyFamily(b *testing.B)     { benchExperiment(b, "E2") }
func BenchmarkE3GeomDecreasing(b *testing.B) { benchExperiment(b, "E3") }
func BenchmarkE4GeomIncreasing(b *testing.B) { benchExperiment(b, "E4") }
func BenchmarkE5Structure(b *testing.B)      { benchExperiment(b, "E5") }
func BenchmarkE6MonteCarlo(b *testing.B)     { benchExperiment(b, "E6") }
func BenchmarkE7Baselines(b *testing.B)      { benchExperiment(b, "E7") }
func BenchmarkE8Existence(b *testing.B)      { benchExperiment(b, "E8") }
func BenchmarkE9Checkpoint(b *testing.B)     { benchExperiment(b, "E9") }
func BenchmarkE10TraceFit(b *testing.B)      { benchExperiment(b, "E10") }
func BenchmarkE11Perturbation(b *testing.B)  { benchExperiment(b, "E11") }
func BenchmarkE12DiscreteDP(b *testing.B)    { benchExperiment(b, "E12") }
func BenchmarkE13Competitive(b *testing.B)   { benchExperiment(b, "E13") }
func BenchmarkE14Mixtures(b *testing.B)      { benchExperiment(b, "E14") }
func BenchmarkE15Granularity(b *testing.B)   { benchExperiment(b, "E15") }
func BenchmarkE16Ablation(b *testing.B)      { benchExperiment(b, "E16") }
func BenchmarkE17Uniqueness(b *testing.B)    { benchExperiment(b, "E17") }
func BenchmarkE18Misspec(b *testing.B)       { benchExperiment(b, "E18") }
func BenchmarkE19WorstCase(b *testing.B)     { benchExperiment(b, "E19") }
func BenchmarkE20HeteroFarm(b *testing.B)    { benchExperiment(b, "E20") }
func BenchmarkE21Adaptive(b *testing.B)      { benchExperiment(b, "E21") }
func BenchmarkE22RobustBands(b *testing.B)   { benchExperiment(b, "E22") }

// --- Micro-benchmarks of the library's hot paths.

func BenchmarkExpectedWork(b *testing.B) {
	l, _ := lifefn.NewUniform(1000)
	plan := mustPlan(b, l, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sched.ExpectedWork(plan.Schedule, l, 1)
	}
}

func BenchmarkGenerateFromUniform(b *testing.B) {
	l, _ := lifefn.NewUniform(1000)
	pl, _ := core.NewPlanner(l, 1, core.PlanOptions{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pl.GenerateFrom(44); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPlanBestUniform(b *testing.B) {
	l, _ := lifefn.NewUniform(1000)
	pl, _ := core.NewPlanner(l, 1, core.PlanOptions{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pl.PlanBest(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPlanBestGeomDecreasing(b *testing.B) {
	l, _ := lifefn.NewGeomDecreasing(math.Pow(2, 1.0/32))
	pl, _ := core.NewPlanner(l, 1, core.PlanOptions{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pl.PlanBest(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOptimalUniformClosedForm(b *testing.B) {
	l, _ := lifefn.NewUniform(1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := optimal.Uniform(l, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGroundTruthSmall(b *testing.B) {
	l, _ := lifefn.NewGeomIncreasing(32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := optimal.GroundTruth(l, 1, optimal.GroundTruthOptions{Sweeps: 8}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEpisodeSimulation(b *testing.B) {
	l, _ := lifefn.NewUniform(1000)
	plan := mustPlan(b, l, 1)
	pol := nowsim.NewSchedulePolicy(plan.Schedule, "bench")
	src := rng.New(1)
	owner := nowsim.LifeOwner{Life: l}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = nowsim.RunEpisode(pol, 1, owner.ReclaimAfter(src))
	}
}

func BenchmarkTaskEpisode(b *testing.B) {
	l, _ := lifefn.NewUniform(1000)
	plan := mustPlan(b, l, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		pool, _ := nowsim.NewUniformTasks(200, 2)
		pol := nowsim.NewSchedulePolicy(plan.Schedule, "bench")
		b.StartTimer()
		_ = nowsim.RunTaskEpisode(pol, pool, 1, 700)
	}
}

func BenchmarkFarm(b *testing.B) {
	l, _ := lifefn.NewUniform(200)
	plan := mustPlan(b, l, 1)
	factory := func() nowsim.Policy { return nowsim.NewSchedulePolicy(plan.Schedule, "bench") }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		pool, _ := nowsim.NewUniformTasks(300, 2)
		workers := make([]nowsim.Worker, 4)
		for w := range workers {
			workers[w] = nowsim.Worker{
				ID:            w,
				Owner:         nowsim.LifeOwner{Life: l},
				BusySampler:   func(r *rng.Source) float64 { return r.Uniform(5, 20) },
				PolicyFactory: factory,
			}
		}
		b.StartTimer()
		if _, err := nowsim.RunFarm(nowsim.FarmConfig{
			Workers: workers, Overhead: 1, Seed: uint64(i), MaxTime: 1e6,
		}, pool); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMonteCarloSerial(b *testing.B) {
	l, _ := lifefn.NewUniform(1000)
	plan := mustPlan(b, l, 1)
	owner := nowsim.LifeOwner{Life: l}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nowsim.MonteCarlo(nowsim.NewSchedulePolicy(plan.Schedule, "bench"), owner, 1, 20_000, 1)
	}
}

func BenchmarkMonteCarloParallel(b *testing.B) {
	l, _ := lifefn.NewUniform(1000)
	plan := mustPlan(b, l, 1)
	owner := nowsim.LifeOwner{Life: l}
	factory := func() nowsim.Policy { return nowsim.NewSchedulePolicy(plan.Schedule, "bench") }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nowsim.MonteCarloParallel(factory, owner, 1, 20_000, 1, 0)
	}
}

func BenchmarkTraceFit(b *testing.B) {
	l, _ := lifefn.NewUniform(200)
	obs := trace.SampleAbsences(l, 2000, rng.New(5))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := trace.FitLife(obs, trace.FitOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFaultRun(b *testing.B) {
	failure, _ := lifefn.NewGeomDecreasing(math.Pow(2, 1.0/25))
	cfg := faultsim.Config{
		TotalWork: 300,
		SaveCost:  1,
		Failure:   failure,
		PolicyFactory: func() nowsim.Policy {
			return &nowsim.FixedChunkPolicy{Chunk: 9}
		},
	}
	src := rng.New(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := faultsim.Run(cfg, src.Split()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGreedyBaseline(b *testing.B) {
	l, _ := lifefn.NewUniform(1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := baseline.Greedy(l, 1, baseline.GreedyOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func mustPlan(b *testing.B, l lifefn.Life, c float64) core.Plan {
	b.Helper()
	pl, err := core.NewPlanner(l, c, core.PlanOptions{})
	if err != nil {
		b.Fatal(err)
	}
	plan, err := pl.PlanBest()
	if err != nil {
		b.Fatal(err)
	}
	return plan
}
