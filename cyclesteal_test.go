package cyclesteal

import (
	"math"
	"testing"
)

func TestFacadeQuickstartFlow(t *testing.T) {
	life, err := UniformRisk(1000)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Plan(life, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !(plan.ExpectedWork > 0) || plan.Schedule.Len() == 0 {
		t.Fatalf("degenerate plan: %+v", plan)
	}
	if got := ExpectedWork(plan.Schedule, life, 2); math.Abs(got-plan.ExpectedWork) > 1e-9 {
		t.Errorf("ExpectedWork disagrees with plan: %g vs %g", got, plan.ExpectedWork)
	}
	mean, ci := SimulateEpisodes(plan.Schedule, life, 2, 40_000, 9)
	if math.Abs(mean-plan.ExpectedWork) > 5*ci+1e-9 {
		t.Errorf("simulation %g ± %g far from analytic %g", mean, ci, plan.ExpectedWork)
	}
}

func TestFacadeConstructors(t *testing.T) {
	if _, err := UniformRisk(100); err != nil {
		t.Error(err)
	}
	if _, err := PolynomialRisk(3, 100); err != nil {
		t.Error(err)
	}
	hl, err := HalfLife(32)
	if err != nil {
		t.Fatal(err)
	}
	if got := hl.P(32); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("P(half-life) = %g, want 0.5", got)
	}
	if _, err := HalfLife(0); err == nil {
		t.Error("HalfLife(0) accepted")
	}
	if _, err := DoublingRisk(64); err != nil {
		t.Error(err)
	}
	if _, err := FromTraceSamples([]float64{0, 1, 2}, []float64{1, 0.5, 0}); err != nil {
		t.Error(err)
	}
}

func TestFacadeShapeConstants(t *testing.T) {
	u, _ := UniformRisk(10)
	if u.Shape() != ShapeLinear {
		t.Errorf("uniform shape = %v", u.Shape())
	}
	d, _ := DoublingRisk(10)
	if d.Shape() != ShapeConcave {
		t.Errorf("doubling shape = %v", d.Shape())
	}
	h, _ := HalfLife(10)
	if h.Shape() != ShapeConvex {
		t.Errorf("half-life shape = %v", h.Shape())
	}
	_ = ShapeUnknown
}

func TestFacadePlanWithOptions(t *testing.T) {
	life, _ := HalfLife(32)
	plan, err := PlanWith(life, 1, PlanOptions{MaxPeriods: 50})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Schedule.Len() > 50 {
		t.Errorf("MaxPeriods ignored: %d periods", plan.Schedule.Len())
	}
}
