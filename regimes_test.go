package cyclesteal

import (
	"math"
	"testing"
)

func TestDiscreteFacade(t *testing.T) {
	life, err := UniformRisk(200)
	if err != nil {
		t.Fatal(err)
	}
	h := DiscreteHorizonFor(life)
	if h != 200 {
		t.Errorf("horizon = %d, want 200", h)
	}
	s, e, err := DiscreteOptimal(life, 1, h)
	if err != nil {
		t.Fatal(err)
	}
	if !(e > 0) || s.Len() == 0 {
		t.Fatalf("degenerate discrete optimum: E=%g m=%d", e, s.Len())
	}
	plan, err := Plan(life, 1)
	if err != nil {
		t.Fatal(err)
	}
	rounded, err := RoundToIntegerPeriods(plan.Schedule, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := ExpectedWork(rounded, life, 1); got < 0.995*e {
		t.Errorf("rounded guideline %g far below integer optimum %g", got, e)
	}
}

func TestWorstCaseFacade(t *testing.T) {
	s, g, err := WorstCaseOptimal(1000, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g-GuaranteedWork(s, 1, 4)) > 1e-9 {
		t.Errorf("reported guarantee %g disagrees with GuaranteedWork", g)
	}
	closed := 1000 - 2*math.Sqrt(4*1000.0) + 4
	if math.Abs(g-closed) > 5 {
		t.Errorf("guarantee %g far from closed form %g", g, closed)
	}
}

func TestParametricFitFacade(t *testing.T) {
	truth, err := HalfLife(32)
	if err != nil {
		t.Fatal(err)
	}
	obs := SampleAbsences(truth, 4000, NewRand(3))
	fit, err := FitHalfLifeFromTrace(obs)
	if err != nil {
		t.Fatal(err)
	}
	// The fitted half-life is where P = 0.5.
	if p := fit.P(32); math.Abs(p-0.5) > 0.02 {
		t.Errorf("fitted P(32) = %g, want ~0.5", p)
	}
	uTruth, _ := UniformRisk(120)
	uObs := SampleAbsences(uTruth, 4000, NewRand(5))
	uFit, err := FitUniformFromTrace(uObs)
	if err != nil {
		t.Fatal(err)
	}
	if p := uFit.P(60); math.Abs(p-0.5) > 0.02 {
		t.Errorf("fitted uniform P(60) = %g, want ~0.5", p)
	}
}
